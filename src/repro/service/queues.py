"""Bounded ingest queues with explicit, countable backpressure.

Every tenant owns one :class:`BoundedEdgeQueue` between the gateway's
front door (asyncio handlers, file tailers, in-process producers) and its
worker thread.  The queue is the *only* place the service absorbs a
producer/consumer rate mismatch, and it makes the absorption policy
explicit instead of letting memory grow silently:

``block`` (default)
    ``put`` waits until the consumer makes room.  Lossless — the
    backpressure propagates to the producer (an HTTP caller's request
    simply takes longer; a tailer pauses).
``drop_oldest``
    A full queue evicts its oldest unprocessed entries to admit new
    ones, counting every eviction in ``dropped``.  Freshness over
    completeness — the load-shedding mode.
``spill``
    A full queue overflows to a disk file (JSON lines, the service
    codec) and replays it in FIFO order as the consumer catches up.
    Lossless like ``block`` but absorbs bursts without slowing the
    producer; ``spilled`` / ``spill_pending`` surface the overflow.

All counters (``enqueued``, ``dequeued``, ``dropped``, ``spilled``,
``rejected_closed``, depth, high-water mark, oldest-entry lag) feed the
``/metrics`` endpoint.  The queue is thread-safe; ``close()`` starts the
shutdown drain: producers are refused, the consumer keeps draining until
:meth:`get_batch` returns an empty batch with ``closed`` set.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Iterable, List, Optional, Tuple

from .. import faults
from ..graph.edge import StreamEdge
from .codec import edge_from_json, edge_to_json

#: Accepted backpressure policies (see module docstring).
BACKPRESSURE_POLICIES = ("block", "drop_oldest", "spill")


class QueueClosed(RuntimeError):
    """Raised by :meth:`BoundedEdgeQueue.put` after :meth:`close`."""


class _Entry:
    """One queued arrival: the edge, its source offset (file tailers use
    this to checkpoint resume positions), its enqueue time (lag), and —
    for WAL-enabled tenants — the edge's log sequence number, which the
    worker uses to advance the applied-LSN watermark the checkpoint
    barrier records."""

    __slots__ = ("edge", "offset", "enqueued_at", "lsn")

    def __init__(self, edge: StreamEdge, offset: Optional[int],
                 enqueued_at: float, lsn: Optional[int] = None) -> None:
        self.edge = edge
        self.offset = offset
        self.enqueued_at = enqueued_at
        self.lsn = lsn


class BoundedEdgeQueue:
    """A bounded, thread-safe FIFO of edge arrivals (see module doc).

    Parameters
    ----------
    capacity:
        Maximum in-memory entries.  Must be >= 1.
    policy:
        One of :data:`BACKPRESSURE_POLICIES`.
    spill_path:
        Overflow file for the ``spill`` policy (required there, ignored
        otherwise).  Created lazily on first overflow.
    durable_spill:
        When ``True`` (the default) every spilled record is fsynced and
        an orphaned spill file is re-adopted at boot — the spill file
        *is* the durability story.  A WAL-enabled tenant passes
        ``False``: spilled edges are already journaled upstream, so the
        spill is a plain memory overflow (no per-record fsync) and an
        orphan left by a crash is discarded, because boot-time WAL
        replay re-delivers those edges — re-adopting them too would
        double-deliver.
    """

    def __init__(self, capacity: int, *, policy: str = "block",
                 spill_path: Optional[str] = None,
                 durable_spill: bool = True) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool) \
                or capacity < 1:
            raise ValueError(f"queue capacity must be a positive int, "
                             f"got {capacity!r}")
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy: {policy!r} "
                f"(expected one of {BACKPRESSURE_POLICIES})")
        if policy == "spill" and spill_path is None:
            raise ValueError("the spill policy needs a spill_path")
        self.capacity = capacity
        self.policy = policy
        self.spill_path = spill_path
        self.durable_spill = durable_spill
        self._entries: deque = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        # Spill bookkeeping: while a spill file holds entries, FIFO order
        # requires every new arrival to join it (memory would overtake the
        # spilled middle otherwise).  The file is append-write, offset-read.
        self._spill_handle = None
        self._spill_read_offset = 0
        self._spill_pending = 0
        #: Counters surfaced on /metrics.
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.spilled = 0
        self.rejected_closed = 0
        self.high_water = 0
        #: Entries adopted from an orphaned spill file at boot.
        self.spill_recovered = 0
        #: Entries discarded by :meth:`clear` (supervisor restarts).
        self.cleared = 0
        if policy == "spill":
            if durable_spill:
                self._recover_spill()
            else:
                self._discard_orphan_spill()

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def put(self, edge: StreamEdge, *, offset: Optional[int] = None,
            timeout: Optional[float] = None,
            lsn: Optional[int] = None) -> bool:
        """Enqueue one arrival; returns ``False`` only when it was shed.

        Under ``block`` a full queue waits (up to ``timeout`` seconds if
        given — expiry raises ``TimeoutError`` rather than dropping,
        because blocking promises losslessness).  Raises
        :class:`QueueClosed` after :meth:`close`.
        """
        faults.fire("queue.put")
        with self._lock:
            if self._closed:
                self.rejected_closed += 1
                raise QueueClosed("queue is closed to new arrivals")
            if self.policy == "spill" and (
                    self._spill_pending or len(self._entries) >= self.capacity):
                self._spill_out(edge, offset, lsn)
                return True
            if self.policy == "drop_oldest":
                while len(self._entries) >= self.capacity:
                    self._entries.popleft()
                    self.dropped += 1
            elif self.policy == "block":
                deadline = None if timeout is None \
                    else time.monotonic() + timeout
                while len(self._entries) >= self.capacity:
                    remaining = None if deadline is None \
                        else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError(
                            "queue stayed full past the put timeout")
                    if not self._not_full.wait(remaining):
                        raise TimeoutError(
                            "queue stayed full past the put timeout")
                    if self._closed:
                        self.rejected_closed += 1
                        raise QueueClosed("queue closed while blocked")
            self._append(edge, offset, lsn)
            return True

    def put_many(self, edges: Iterable[StreamEdge], *,
                 timeout: Optional[float] = None) -> int:
        """Enqueue a batch; returns how many were admitted (all of them
        except ``drop_oldest`` sheds, which never refuse the *new* edge —
        admitted means entered the pipeline, not survived it)."""
        admitted = 0
        for edge in edges:
            if self.put(edge, timeout=timeout):
                admitted += 1
        return admitted

    def _append(self, edge: StreamEdge, offset: Optional[int],
                lsn: Optional[int] = None) -> None:
        self._entries.append(_Entry(edge, offset, time.monotonic(), lsn))
        self.enqueued += 1
        if len(self._entries) > self.high_water:
            self.high_water = len(self._entries)
        self._not_empty.notify()

    # ------------------------------------------------------------------ #
    # Spill file (all under self._lock)
    # ------------------------------------------------------------------ #
    def _recover_spill(self) -> None:
        """Adopt an orphaned spill file left by a crash (init only).

        A kill between spill-out and spill-in used to lose the parked
        edges silently: the next overflow reopened the file with ``w+``
        and truncated them.  Now complete lines are counted back into
        the pending total (a torn trailing write — no final newline —
        is discarded via an atomic rewrite, never a partial parse).
        """
        try:
            with open(self.spill_path, encoding="utf-8") as handle:
                data = handle.read()
        except (FileNotFoundError, OSError):
            return
        if not data:
            return
        keep = data if data.endswith("\n") \
            else data[:data.rfind("\n") + 1]
        if keep != data:
            tmp = self.spill_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as out:
                out.write(keep)
                out.flush()
                os.fsync(out.fileno())
            os.replace(tmp, self.spill_path)
        count = keep.count("\n")
        if not count:
            return
        self._spill_handle = open(self.spill_path, "a+", encoding="utf-8")
        self._spill_read_offset = 0
        self._spill_pending = count
        self.spill_recovered = count
        # Keep the flow balance (enqueued == dequeued once drained):
        # recovered entries re-enter this process's pipeline.
        self.enqueued += count
        self.spilled += count

    def _discard_orphan_spill(self) -> None:
        """Drop a crash-orphaned spill file (init, non-durable mode) —
        its edges live in the WAL and replay will re-deliver them; a
        second delivery from the spill would break exactly-once."""
        try:
            os.remove(self.spill_path)
        except OSError:
            pass

    def _spill_out(self, edge: StreamEdge, offset: Optional[int],
                   lsn: Optional[int] = None) -> None:
        if self._spill_handle is None:
            self._spill_handle = open(self.spill_path, "a+", encoding="utf-8")
            self._spill_read_offset = 0
        record = {"edge": edge_to_json(edge)}
        if offset is not None:
            record["offset"] = offset
        if lsn is not None:
            record["lsn"] = lsn
        self._spill_handle.seek(0, os.SEEK_END)
        self._spill_handle.write(json.dumps(record) + "\n")
        self._spill_handle.flush()
        if self.durable_spill:
            # Durability before acknowledgement: once put() returns, a
            # kill must not lose the parked edge.  (A WAL-enabled tenant
            # already journaled it — the spill is just overflow.)
            os.fsync(self._spill_handle.fileno())
        self._spill_pending += 1
        self.spilled += 1
        self.enqueued += 1
        self._not_empty.notify()

    def _spill_in(self, budget: int) -> None:
        """Refill up to ``budget`` entries from the spill file, swapping
        in a fresh file once fully drained."""
        handle = self._spill_handle
        handle.seek(self._spill_read_offset)
        while budget > 0 and self._spill_pending > 0:
            line = handle.readline()
            if not line:
                break
            self._spill_pending -= 1
            try:
                record = json.loads(line)
                entry = _Entry(edge_from_json(record["edge"]),
                               record.get("offset"), time.monotonic(),
                               record.get("lsn"))
            except (ValueError, KeyError):
                # A corrupt recovered line: drop it, keep draining.
                self.dropped += 1
                self.dequeued += 1
                continue
            self._entries.append(entry)
            budget -= 1
        self._spill_read_offset = handle.tell()
        if self._spill_pending == 0:
            self._spill_reset()

    def _spill_reset(self) -> None:
        """Replace the drained spill file with a fresh empty one via
        atomic rename — an in-place truncate torn by a crash could leave
        half a record to be mis-recovered on the next boot."""
        tmp = self.spill_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as out:
            out.flush()
            os.fsync(out.fileno())
        if self._spill_handle is not None:
            self._spill_handle.close()
        os.replace(tmp, self.spill_path)
        self._spill_handle = open(self.spill_path, "a+", encoding="utf-8")
        self._spill_read_offset = 0

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #
    def get_batch(self, max_batch: int,
                  timeout: Optional[float] = None
                  ) -> Tuple[List[_Entry], bool]:
        """Dequeue up to ``max_batch`` entries.

        Returns ``(entries, closed)``.  Blocks up to ``timeout`` seconds
        for the first entry (``None`` = forever); an empty batch with
        ``closed=True`` means the queue is closed *and* fully drained —
        the worker's exit signal.
        """
        faults.fire("queue.get")
        with self._lock:
            while not self._entries and not self._spill_pending:
                if self._closed:
                    return [], True
                if not self._not_empty.wait(timeout):
                    return [], self._closed and not self._entries \
                        and not self._spill_pending
            batch: List[_Entry] = []
            while self._entries and len(batch) < max_batch:
                batch.append(self._entries.popleft())
            if self._spill_pending and len(batch) < max_batch:
                self._spill_in(max_batch - len(batch))
                while self._entries and len(batch) < max_batch:
                    batch.append(self._entries.popleft())
            self.dequeued += len(batch)
            self._not_full.notify_all()
            return batch, False

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def depth(self) -> int:
        """Entries currently queued (memory + spill overflow)."""
        with self._lock:
            return len(self._entries) + self._spill_pending

    def spill_pending(self) -> int:
        """Entries currently parked in the spill file."""
        with self._lock:
            return self._spill_pending

    def lag_seconds(self) -> float:
        """Age of the oldest queued in-memory entry (0.0 when empty) —
        how far the consumer trails the front door."""
        with self._lock:
            if not self._entries:
                return 0.0
            return max(0.0, time.monotonic() - self._entries[0].enqueued_at)

    def counters(self) -> dict:
        """A snapshot of every counter the metrics endpoint exports."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "depth": len(self._entries) + self._spill_pending,
                "spill_pending": self._spill_pending,
                "high_water": self.high_water,
                "enqueued": self.enqueued,
                "dequeued": self.dequeued,
                "dropped": self.dropped,
                "spilled": self.spilled,
                "rejected_closed": self.rejected_closed,
                "spill_recovered": self.spill_recovered,
                "cleared": self.cleared,
                "lag_seconds": (
                    max(0.0, time.monotonic() - self._entries[0].enqueued_at)
                    if self._entries else 0.0),
            }

    def clear(self) -> int:
        """Discard every pending entry (memory + spill) — the
        supervisor's restart path: a session restored from its
        checkpoint replays from the checkpointed position, so the
        backlog past the barrier must not be applied out of order.
        Returns how many entries were discarded."""
        with self._lock:
            count = len(self._entries) + self._spill_pending
            self._entries.clear()
            if self._spill_pending:
                self._spill_pending = 0
                self._spill_reset()
            self.cleared += count
            # Flow balance: cleared entries left the pipeline.
            self.dequeued += count
            self._not_full.notify_all()
            return count

    def close(self) -> None:
        """Refuse new arrivals; wakes blocked producers and the consumer
        (which keeps draining what is already queued).  Idempotent."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def dispose(self) -> None:
        """Release the spill file handle (after the worker has exited)."""
        with self._lock:
            if self._spill_handle is not None:
                self._spill_handle.close()
                self._spill_handle = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BoundedEdgeQueue(depth={self.depth()}, "
                f"capacity={self.capacity}, policy={self.policy})")
