"""Fault containment primitives: retries, breakers, budgets, health.

The gateway's reliability story is built from five small, independently
testable pieces, all stdlib-only and thread-safe:

:class:`RetryPolicy` / :func:`call_with_retry`
    Jittered exponential backoff around a transient operation (a sink
    write, a checkpoint, a tailer read).  Retries are *budget-capped*
    across the component (:class:`RetryBudget`), so a persistent failure
    degrades quickly instead of multiplying latency forever.
:class:`CircuitBreaker`
    After ``failure_threshold`` consecutive failures a component stops
    being attempted (*open* = degraded) until a cool-down passes, then a
    probe either closes it again or re-opens it.  Breakers let a broken
    match log or checkpoint disk degrade that one component while
    ingestion keeps flowing.
:class:`TokenBucket`
    Per-tenant request admission: ``rate`` tokens/second refill up to
    ``burst``; a rejected acquisition names the seconds to wait (the
    HTTP layer's ``Retry-After``).
:class:`RestartBudget`
    Bounded supervised restarts with exponential backoff — how many
    times, and how fast, a tenant session may be rebuilt from its last
    checkpoint before the tenant is declared ``degraded``.
:class:`HealthTracker`
    The ``healthy | degraded | recovering`` state machine every tenant
    (and the gateway as a whole) exposes on ``/healthz``, with a bounded
    transition history so operators and the chaos suite can verify a
    ``degraded -> recovering -> healthy`` arc actually happened.

:class:`DeadLetterQueue` rounds it out: poison arrivals (edges whose
ingestion raises even in isolation) are appended to a bounded JSONL file
instead of being silently dropped, with counters surfaced in
``/metrics``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import threading
import time
from typing import Callable, List, Optional, Tuple

#: The tenant/gateway health states (see :class:`HealthTracker`).
HEALTH_STATES = ("healthy", "degraded", "recovering")


# --------------------------------------------------------------------- #
# Retries
# --------------------------------------------------------------------- #

class RetryBudget:
    """A token bucket of *retries* shared by one component.

    Each retry spends one token; tokens refill at ``rate`` per second up
    to ``capacity``.  When the bucket is empty the caller stops retrying
    immediately — under a persistent failure every operation fails once,
    fast, instead of each paying the full backoff ladder.
    """

    def __init__(self, capacity: int = 10, rate: float = 1.0,
                 *, clock: Callable[[], float] = time.monotonic) -> None:
        self.capacity = float(capacity)
        self.rate = float(rate)
        self._clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()
        self._lock = threading.Lock()
        #: Retries refused because the budget was exhausted.
        self.exhausted = 0

    def spend(self) -> bool:
        """Take one retry token; ``False`` when the budget is spent."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.capacity, self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            self.exhausted += 1
            return False


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Shape of a retry ladder (see :func:`call_with_retry`).

    ``attempts`` counts the *total* tries (1 = no retry).  Delays grow
    from ``base_delay`` by ``multiplier`` up to ``max_delay``, each
    multiplied by a uniform jitter in ``[1 - jitter, 1 + jitter]`` so
    synchronized failures do not retry in lockstep.  Only exception
    types in ``retry_on`` are retried; everything else propagates at
    once.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1
    retry_on: Tuple[type, ...] = (OSError,)

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """The post-failure sleep before try ``attempt + 1`` (0-based)."""
        delay = min(self.max_delay,
                    self.base_delay * (self.multiplier ** attempt))
        if self.jitter:
            delay *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return max(0.0, delay)


def call_with_retry(fn: Callable, *args,
                    policy: RetryPolicy = RetryPolicy(),
                    budget: Optional[RetryBudget] = None,
                    on_retry: Optional[Callable] = None,
                    sleep: Callable[[float], None] = time.sleep,
                    rng: Optional[random.Random] = None,
                    **kwargs):
    """Run ``fn(*args, **kwargs)`` under ``policy``.

    Retries only ``policy.retry_on`` exceptions, sleeping the jittered
    exponential delay between tries; a ``budget`` (if given) caps
    retries component-wide.  ``on_retry(attempt, exc)`` is called before
    each sleep (logging / counters).  The last failure propagates.
    """
    rng = rng if rng is not None else random
    for attempt in range(policy.attempts):
        try:
            return fn(*args, **kwargs)
        except policy.retry_on as exc:
            last_try = attempt >= policy.attempts - 1
            if last_try or (budget is not None and not budget.spend()):
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.delay_for(attempt, rng))
    raise AssertionError("unreachable")    # pragma: no cover


def retrying(policy: RetryPolicy = RetryPolicy(),
             budget: Optional[RetryBudget] = None):
    """Decorator form of :func:`call_with_retry`."""
    def wrap(fn):
        def wrapped(*args, **kwargs):
            return call_with_retry(
                fn, *args, policy=policy, budget=budget, **kwargs)
        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        wrapped.__doc__ = fn.__doc__
        return wrapped
    return wrap


# --------------------------------------------------------------------- #
# Circuit breaker
# --------------------------------------------------------------------- #

class CircuitBreaker:
    """Trip a persistently failing component to degraded mode.

    *Closed* (normal): calls flow; ``failure_threshold`` consecutive
    failures trip it.  *Open*: :meth:`allow` refuses for
    ``reset_timeout`` seconds — the component is skipped entirely, so a
    dead disk cannot add per-call latency.  *Half-open*: after the
    cool-down one probe call is allowed through; success closes the
    breaker, failure re-opens it.

    Maps onto health states via :attr:`health`:
    closed → ``healthy``, open → ``degraded``, half-open →
    ``recovering``.
    """

    def __init__(self, name: str, *, failure_threshold: int = 5,
                 reset_timeout: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        #: Trip count (closed -> open transitions), for metrics.
        self.trips = 0
        #: Calls refused while open.
        self.short_circuits = 0

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open``."""
        with self._lock:
            return self._peek()

    def _peek(self) -> str:
        if self._state == "open" \
                and self._clock() - self._opened_at >= self.reset_timeout:
            self._state = "half_open"
        return self._state

    @property
    def health(self) -> str:
        """The breaker's contribution to component health."""
        return {"closed": "healthy", "open": "degraded",
                "half_open": "recovering"}[self.state]

    def allow(self) -> bool:
        """Whether the component should be attempted right now."""
        with self._lock:
            state = self._peek()
            if state == "open":
                self.short_circuits += 1
                return False
            return True

    def record_success(self) -> None:
        """Note a successful call (closes a half-open breaker)."""
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        """Note a failed call (may trip the breaker)."""
        with self._lock:
            if self._state == "half_open":
                self._state = "open"
                self._opened_at = self._clock()
                return
            self._failures += 1
            if self._state == "closed" \
                    and self._failures >= self.failure_threshold:
                self._state = "open"
                self._opened_at = self._clock()
                self.trips += 1

    def counters(self) -> dict:
        """A JSON-able snapshot for ``/stats``."""
        return {"state": self.state, "trips": self.trips,
                "short_circuits": self.short_circuits}


# --------------------------------------------------------------------- #
# Rate limiting
# --------------------------------------------------------------------- #

class TokenBucket:
    """The classic token-bucket admission controller.

    ``rate`` tokens per second refill continuously up to ``burst``.
    :meth:`try_acquire` either admits (returns ``0.0``) or names how
    long the caller should wait before retrying — the number the HTTP
    layer sends as ``Retry-After`` and the WebSocket layer puts in its
    backoff frame.
    """

    def __init__(self, rate: float, burst: float, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()
        #: Admitted / rejected token counts, for metrics.
        self.admitted = 0
        self.limited = 0

    def try_acquire(self, tokens: int = 1) -> float:
        """Admit ``tokens`` units or say how long to wait.

        Returns ``0.0`` on admission, else the seconds until the bucket
        will hold the requested tokens (at least a millisecond, so a
        caller that sleeps the returned value always makes progress).
        Requests larger than ``burst`` are admitted whenever the bucket
        is *full* — an oversized batch is throttled, not unservable.
        """
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            needed = min(float(tokens), self.burst)
            if self._tokens >= needed:
                self._tokens -= needed
                self.admitted += tokens
                return 0.0
            self.limited += tokens
            return max(0.001, (needed - self._tokens) / self.rate)

    def counters(self) -> dict:
        """A JSON-able snapshot for ``/stats``."""
        return {"rate": self.rate, "burst": self.burst,
                "admitted": self.admitted, "limited": self.limited}


class RateLimited(RuntimeError):
    """Raised by the gateway when a tenant's bucket rejects a batch;
    carries the suggested wait in :attr:`retry_after` (seconds)."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"rate limit exceeded; retry in {retry_after:.3f}s")
        self.retry_after = retry_after


# --------------------------------------------------------------------- #
# Supervised restarts
# --------------------------------------------------------------------- #

class RestartBudget:
    """Bounded restarts with exponential backoff.

    A supervisor asks :meth:`next_delay` before each restart: it returns
    the backoff to sleep (``base_delay * 2^n``, capped) or ``None`` once
    ``max_restarts`` have happened within the sliding ``window`` — the
    signal to stop restarting and mark the component ``degraded``.  A
    component that stays up longer than ``window`` earns its budget
    back.
    """

    def __init__(self, max_restarts: int = 5, *, window: float = 300.0,
                 base_delay: float = 0.1, max_delay: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.max_restarts = max_restarts
        self.window = window
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._clock = clock
        self._lock = threading.Lock()
        self._restarts: List[float] = []
        #: Total restarts granted / refused, for metrics.
        self.granted = 0
        self.refused = 0

    def next_delay(self) -> Optional[float]:
        """Grant one restart (returning its backoff) or ``None``."""
        with self._lock:
            now = self._clock()
            self._restarts = [stamp for stamp in self._restarts
                              if now - stamp < self.window]
            if len(self._restarts) >= self.max_restarts:
                self.refused += 1
                return None
            delay = min(self.max_delay,
                        self.base_delay * (2 ** len(self._restarts)))
            self._restarts.append(now)
            self.granted += 1
            return delay

    def counters(self) -> dict:
        """A JSON-able snapshot for ``/stats``."""
        with self._lock:
            return {"granted": self.granted, "refused": self.refused,
                    "recent": len(self._restarts),
                    "max_restarts": self.max_restarts}


# --------------------------------------------------------------------- #
# Health
# --------------------------------------------------------------------- #

class HealthTracker:
    """The ``healthy | degraded | recovering`` state machine.

    Transitions are timestamped and kept in a bounded history so
    ``/stats`` (and the chaos suite) can show *that* a component dipped
    and came back, not just its instantaneous state.
    """

    def __init__(self, *, history: int = 32,
                 clock: Callable[[], float] = time.time) -> None:
        self._lock = threading.Lock()
        self._state = "healthy"
        self._reason = ""
        self._clock = clock
        self._history_cap = history
        self._history: List[dict] = []

    @property
    def state(self) -> str:
        """The current health state."""
        with self._lock:
            return self._state

    @property
    def reason(self) -> str:
        """Why the component is not healthy ("" when healthy)."""
        with self._lock:
            return self._reason

    def set_state(self, state: str, reason: str = "") -> None:
        """Transition (no-op when already in ``state``)."""
        if state not in HEALTH_STATES:
            raise ValueError(f"unknown health state: {state!r}")
        with self._lock:
            if state == self._state:
                return
            self._state = state
            self._reason = reason if state != "healthy" else ""
            self._history.append({
                "state": state, "reason": reason,
                "at": round(self._clock(), 3)})
            del self._history[:-self._history_cap]

    def history(self) -> List[dict]:
        """The bounded transition log (oldest first)."""
        with self._lock:
            return list(self._history)

    def snapshot(self) -> dict:
        """A JSON-able snapshot for ``/stats`` and ``/healthz``."""
        with self._lock:
            return {"state": self._state, "reason": self._reason,
                    "transitions": list(self._history)}


# --------------------------------------------------------------------- #
# Dead letters
# --------------------------------------------------------------------- #

class DeadLetterQueue:
    """A bounded JSONL sink for poison arrivals.

    An edge whose ingestion raises — even retried in isolation — is
    *recorded* here (reason, error, the edge's wire form, a timestamp)
    instead of vanishing into a counter.  The file is bounded: past
    ``max_records`` new poison is counted in :attr:`dropped` but not
    written, so a poison storm cannot fill the disk.
    """

    def __init__(self, path: str, *, max_records: int = 1000) -> None:
        self.path = path
        self.max_records = max_records
        self._lock = threading.Lock()
        #: Records written / shed-over-bound, for metrics.
        self.recorded = 0
        self.dropped = 0
        if os.path.exists(path):
            try:
                with open(path, encoding="utf-8") as handle:
                    self.recorded = sum(1 for line in handle if line.strip())
            except OSError:            # pragma: no cover - disk trouble
                pass

    def record(self, reason: str, payload: dict,
               error: Optional[BaseException] = None) -> bool:
        """Append one dead letter; ``False`` when over the bound (or the
        disk refused — dead-lettering must never raise into the
        worker)."""
        with self._lock:
            if self.recorded >= self.max_records:
                self.dropped += 1
                return False
            entry = {"at": round(time.time(), 3), "reason": reason,
                     "payload": payload}
            if error is not None:
                entry["error"] = repr(error)
            try:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
            except OSError:
                self.dropped += 1
                return False
            self.recorded += 1
            return True

    def read_all(self) -> List[dict]:
        """Every recorded dead letter (tests / operators)."""
        if not os.path.exists(self.path):
            return []
        out = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out

    def counters(self) -> dict:
        """A JSON-able snapshot for ``/stats``."""
        return {"recorded": self.recorded, "dropped": self.dropped}
