"""File tailing producers: follow JSONL/CSV files into a tenant's queue.

A :class:`FileTailer` is a daemon thread that follows a growing file
(``tail -f`` style), parses each completed line into a
:class:`~repro.graph.edge.StreamEdge`, and enqueues it on its tenant's
bounded queue — so file-fed deployments get the same backpressure,
metrics, and crash recovery as network producers.

Each enqueued edge carries the byte offset *after* its line as a source
resume position; the tenant's worker records the offset once the edge is
actually in the engine, and the checkpoint barrier persists it.  On
restart the gateway hands the tailer the checkpointed offset, so lines
already absorbed before the crash are not re-read and lines after the
barrier are replayed — exactly the at-least-once replay the recovery
contract needs (see :mod:`repro.service.gateway`).

Formats: ``jsonl`` (one service-codec edge object per line) and ``csv``
(the :mod:`repro.io.csv_stream` column layout; the header row is re-read
on every boot to recover the field order, then the tailer seeks to the
resume offset).  A line that fails to parse is counted and skipped — a
corrupt row must not wedge the feed.  Partial lines (a writer caught
mid-append) are left unconsumed until their newline arrives.

Resilience: read errors back off exponentially (capped) and reopen the
file at the last fully-consumed offset, so a transient I/O failure never
kills the feed.  Truncation (the file shrank under the tailer) and
rotation (the path now names a different inode) are detected at the next
idle poll; both reopen from the start of the new content and are
counted.  The ``tailer.read`` fault-injection site covers every read.
"""

from __future__ import annotations

import csv
import json
import os
import threading
from typing import List, Optional

from .. import faults
from ..graph.edge import StreamEdge
from ..io.csv_stream import _parse_label
from .codec import CodecError, edge_from_json
from .config import TailConfig
from .queues import QueueClosed

#: Read-error backoff bounds (seconds).
_BACKOFF_CAP = 5.0


class FileTailer(threading.Thread):
    """Follow one file into one tenant's queue (see module docstring)."""

    def __init__(self, tenant, config: TailConfig, *,
                 start_offset: int = 0) -> None:
        super().__init__(daemon=True,
                         name=f"repro-tail-{tenant.config.name}")
        self.tenant = tenant
        self.config = config
        self.start_offset = start_offset
        self._stop_event = threading.Event()
        #: Completed lines consumed this run.
        self.lines_read = 0
        #: Lines skipped because they would not parse.
        self.parse_errors = 0
        #: Edges successfully enqueued.
        self.edges_enqueued = 0
        #: Read failures survived (each backs off and reopens).
        self.read_errors = 0
        #: Times the file shrank under the tailer.
        self.truncations = 0
        #: Times the path started naming a different inode.
        self.rotations = 0
        self._resume_offset = start_offset

    def stop(self) -> None:
        """Ask the tailer to exit; it stops at the next poll tick."""
        self._stop_event.set()

    # ------------------------------------------------------------------ #
    def run(self) -> None:  # noqa: D102 - Thread API
        poll = self.config.poll_interval
        backoff = poll
        while not self._stop_event.is_set():
            if not os.path.exists(self.config.path):
                if self._stop_event.wait(poll):
                    return
                continue
            try:
                with open(self.config.path, encoding="utf-8",
                          newline="") as fh:
                    fields = self._position(fh, self._resume_offset)
                    outcome = self._follow(fh, fields, poll)
            except QueueClosed:
                return
            except OSError:
                # Transient read trouble (or an injected fault): back
                # off and reopen at the last fully-consumed offset.
                self.read_errors += 1
                backoff = min(backoff * 2.0, _BACKOFF_CAP)
                if self._stop_event.wait(backoff):
                    return
                continue
            backoff = poll
            if outcome == "stopped":
                return
            # "reopen": truncation/rotation — loop around and reattach.

    def _position(self, fh, offset: int) -> Optional[List[str]]:
        """Consume the CSV header (if any) and seek to the resume
        offset; returns the CSV field order or ``None`` for JSONL."""
        fields: Optional[List[str]] = None
        if self.config.format == "csv":
            header = fh.readline()
            if header:
                fields = next(csv.reader([header]))
            header_end = fh.tell()
            if offset > header_end:
                fh.seek(offset)
        elif offset:
            fh.seek(offset)
        return fields

    def _follow(self, fh, fields, poll: float) -> str:
        """Consume completed lines until stop ("stopped") or until the
        file is truncated/rotated under us ("reopen")."""
        while not self._stop_event.is_set():
            position = fh.tell()
            faults.fire("tailer.read")
            line = fh.readline()
            if not line or not line.endswith("\n"):
                # Nothing new, or a writer caught mid-line: rewind and
                # wait for the newline to land.
                fh.seek(position)
                event = self._check_replaced(fh, position)
                if event is not None:
                    self._resume_offset = 0
                    return "reopen"
                if self._stop_event.wait(poll):
                    return "stopped"
                continue
            self.lines_read += 1
            stripped = line.strip()
            if not stripped:
                self._resume_offset = fh.tell()
                continue
            edge = self._parse(stripped, fields)
            if edge is None:
                self.parse_errors += 1
                self._resume_offset = fh.tell()
                continue
            self.tenant.ingest_edges(
                [edge], offset=(self.config.path, fh.tell()))
            self.edges_enqueued += 1
            self._resume_offset = fh.tell()
        return "stopped"

    def _check_replaced(self, fh, position: int) -> Optional[str]:
        """At an idle poll, notice the file changing under the tailer."""
        try:
            disk = os.stat(self.config.path)
        except OSError:
            # The path vanished mid-rotation; reopen once it returns.
            self.rotations += 1
            return "rotated"
        if disk.st_size < position:
            self.truncations += 1
            return "truncated"
        if disk.st_ino != os.fstat(fh.fileno()).st_ino:
            self.rotations += 1
            return "rotated"
        return None

    def _parse(self, line: str,
               fields: Optional[List[str]]) -> Optional[StreamEdge]:
        server_mode = self.tenant.config.timestamps == "server"
        if self.config.format == "jsonl":
            try:
                record = json.loads(line)
                default = (self.tenant.next_server_timestamp()
                           if server_mode else None)
                return edge_from_json(record, default_timestamp=default)
            except (ValueError, CodecError):
                return None
        # csv
        if not fields:
            return None
        try:
            row = dict(zip(fields, next(csv.reader([line]))))
            timestamp = (self.tenant.next_server_timestamp()
                         if server_mode else float(row["timestamp"]))
            return StreamEdge(
                row["src"], row["dst"],
                src_label=row["src_label"], dst_label=row["dst_label"],
                timestamp=timestamp,
                label=_parse_label(row.get("label") or ""),
                edge_id=row.get("edge_id") or None)
        except (KeyError, ValueError, StopIteration):
            return None

    def status(self) -> dict:
        """A JSON-able snapshot of the tailer's counters."""
        return {
            "path": self.config.path,
            "format": self.config.format,
            "lines_read": self.lines_read,
            "parse_errors": self.parse_errors,
            "edges_enqueued": self.edges_enqueued,
            "read_errors": self.read_errors,
            "truncations": self.truncations,
            "rotations": self.rotations,
        }
