"""Per-tenant write-ahead log: durable admission with zero producer replay.

The gateway's original crash contract pushed durability onto clients —
after a restart, producers re-sent everything past the checkpointed
position.  The :class:`WriteAheadLog` moves that burden server-side:
every admitted batch is journaled *before* it enters the in-memory queue
and the ack is withheld until the journal is on disk, so an acknowledged
edge survives ``kill -9`` with no producer cooperation.  On boot the
tenant replays the log from the last checkpoint's WAL position and
reconstructs the exact session (and match log) the crash interrupted.

Log layout
----------
The log is a directory of fixed-name segments (``wal-00000001.log``,
``wal-00000002.log``, ...).  Each segment is a sequence of CRC32-framed
records::

    [u32 crc32(payload)] [u32 len(payload)] [payload bytes]

(little-endian header, JSON payload).  The first frame of every segment
is a header naming the base LSN — the log sequence number of the first
edge recorded in that segment.  Every subsequent frame journals one
admitted *batch* atomically: its edges (service codec JSON), optional
tail-source offsets, the producer's optional ``request_id``, and the
batch's invalid-record count.  Edges are numbered with consecutive LSNs;
a frame covering ``n`` edges spans ``[base, base + n)``.

Batch atomicity is what makes exactly-once composable with retries: a
frame torn by a crash is discarded *whole* during recovery, so a
producer that re-sends an unacknowledged batch (same ``request_id``)
can never double-deliver a prefix of it.

Durability
----------
Appends are buffered; :meth:`WriteAheadLog.sync` drives a group commit —
the first caller becomes the *leader*, optionally waits a gather window
(``fsync_interval_ms``) so concurrent appenders can pile on (skipped
once ``fsync_batch`` frames are pending), then flushes and fsyncs once
for everyone.  Callers whose frames were covered by a concurrent sync
return without touching the disk.  ``fsync_interval_ms = 0`` degrades to
plain sync-per-batch.

Recovery
--------
Opening a log scans every segment in order, validating frame CRCs.  A
torn tail (crash mid-write) is truncated off the final segment and
counted in ``truncated_bytes``; corruption *inside* the sequence (bad
disk, manual tampering) truncates the log at the corruption point,
drops the later segments, and is loudly reported in
``corrupt_dropped_frames`` — boot proceeds on the surviving prefix
rather than refusing outright.  ``repro wal verify`` surfaces the same
scan as a preflight.

Retention is checkpoint-driven: :meth:`WriteAheadLog.reclaim` deletes
segments whose edges are all at or below the *oldest kept* checkpoint's
WAL position — never the newest's, so falling back down the checkpoint
chain always finds enough log to replay forward from.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import threading
import time
import zlib
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from .. import faults

__all__ = [
    "WriteAheadLog", "WalCorruptError", "DedupIndex",
    "scan_segment", "inspect_wal",
]

#: Frame header: crc32(payload), payload length (little-endian u32 pair).
_FRAME = struct.Struct("<II")
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
#: Hard ceiling on one frame's payload — a corrupt length field must not
#: trigger a multi-GB allocation during recovery.
_MAX_PAYLOAD = 64 * 1024 * 1024


class WalCorruptError(RuntimeError):
    """Raised when a WAL directory cannot be scanned at all (unreadable
    segment files, not frame-level corruption — that is *recovered*, not
    raised; see the module docstring)."""


def _segment_name(ordinal: int) -> str:
    return f"{_SEGMENT_PREFIX}{ordinal:08d}{_SEGMENT_SUFFIX}"


def _segment_ordinal(name: str) -> Optional[int]:
    if not (name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)):
        return None
    try:
        return int(name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])
    except ValueError:
        return None


def _encode_frame(payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":"),
                      ensure_ascii=True).encode("ascii")
    return _FRAME.pack(zlib.crc32(body) & 0xFFFFFFFF, len(body)) + body


def scan_segment(path: str) -> dict:
    """Scan one segment file, validating every frame.

    Returns ``{"frames": [...], "good_bytes": n, "torn_bytes": m,
    "error": reason_or_None}`` where ``frames`` holds the decoded
    payloads in order and ``good_bytes`` is the offset of the first
    invalid byte (== file size for a clean segment).  Never raises on
    corrupt *content*; unreadable files raise :class:`WalCorruptError`.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise WalCorruptError(f"cannot read WAL segment {path}: {exc}")
    frames: List[dict] = []
    offset = 0
    error: Optional[str] = None
    while offset < len(data):
        header = data[offset:offset + _FRAME.size]
        if len(header) < _FRAME.size:
            error = "torn frame header"
            break
        crc, length = _FRAME.unpack(header)
        if length > _MAX_PAYLOAD:
            error = f"implausible frame length {length}"
            break
        body = data[offset + _FRAME.size:offset + _FRAME.size + length]
        if len(body) < length:
            error = "torn frame payload"
            break
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            error = "frame CRC mismatch"
            break
        try:
            payload = json.loads(body)
        except ValueError:
            error = "frame payload is not JSON"
            break
        if not isinstance(payload, dict):
            error = "frame payload is not an object"
            break
        frames.append(payload)
        offset += _FRAME.size + length
    return {
        "frames": frames,
        "good_bytes": offset,
        "torn_bytes": len(data) - offset,
        "error": error,
    }


def inspect_wal(directory: str) -> dict:
    """A read-only report over a WAL directory (``repro wal inspect``).

    Safe to run against a live log — it only reads.  Returns segment
    summaries, total frame/edge counts, the LSN range, and any
    corruption found (torn tails and interior damage are distinguished
    by position: damage in a non-final segment is a real problem, a torn
    final tail is the expected crash signature).
    """
    segments: List[dict] = []
    total_edges = 0
    total_frames = 0
    errors: List[str] = []
    names = []
    if os.path.isdir(directory):
        names = sorted(
            (ordinal, name) for name in os.listdir(directory)
            if (ordinal := _segment_ordinal(name)) is not None)
    last_lsn = 0
    for position, (ordinal, name) in enumerate(names):
        path = os.path.join(directory, name)
        scan = scan_segment(path)
        base = None
        edges = 0
        data_frames = 0
        for frame in scan["frames"]:
            if "base" in frame and base is None:
                base = int(frame["base"])
            else:
                data_frames += 1
                edges += int(frame.get("n", 0))
        if base is not None:
            last_lsn = max(last_lsn, base + edges - 1)
        total_edges += edges
        total_frames += data_frames
        final = position == len(names) - 1
        if scan["error"] is not None and not final:
            errors.append(f"{name}: {scan['error']} "
                          f"(interior corruption, not a torn tail)")
        segments.append({
            "name": name,
            "ordinal": ordinal,
            "base_lsn": base,
            "frames": data_frames,
            "edges": edges,
            "bytes": scan["good_bytes"] + scan["torn_bytes"],
            "torn_bytes": scan["torn_bytes"],
            "error": scan["error"],
        })
    return {
        "directory": directory,
        "segments": segments,
        "frames": total_frames,
        "edges": total_edges,
        "last_lsn": last_lsn,
        "errors": errors,
    }


class DedupIndex:
    """A bounded ``request_id → cached ack`` map (exactly-once window).

    Producers attach an opaque ``request_id`` to ingest batches; the
    tenant journals it with the batch and remembers the ack here.  A
    retry after a lost ack gets the *cached* ack back instead of
    re-admitting the batch.  The window is bounded FIFO — a retry
    arriving after ``capacity`` newer requests have displaced its entry
    is treated as new, which is the standard dedup-window trade-off.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = max(1, int(capacity))
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, request_id: str) -> Optional[dict]:
        """The cached ack for ``request_id``, or ``None``."""
        with self._lock:
            return self._entries.get(request_id)

    def put(self, request_id: str, ack: dict) -> None:
        """Remember (or refresh) the ack for ``request_id``."""
        with self._lock:
            if request_id in self._entries:
                self._entries[request_id] = ack
                return
            self._entries[request_id] = ack
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> List[List]:
        """JSON-able ``[[request_id, ack], ...]`` oldest-first — rides in
        the checkpoint meta so restarts keep the window."""
        with self._lock:
            return [[rid, ack] for rid, ack in self._entries.items()]

    def restore(self, items) -> None:
        """Reload a :meth:`snapshot` (checkpoint restore)."""
        with self._lock:
            self._entries.clear()
            for rid, ack in items or []:
                self._entries[str(rid)] = dict(ack)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)


class WriteAheadLog:
    """A segmented, CRC-framed, group-commit write-ahead log.

    Parameters
    ----------
    directory:
        Segment directory (created if missing).  Opening scans and
        recovers it — see the module docstring.
    segment_bytes:
        Rotate to a fresh segment once the active one reaches this size.
    fsync_interval_ms:
        Group-commit gather window: the sync leader sleeps this long
        before fsyncing so concurrent appends share the commit.  ``0``
        syncs immediately.
    fsync_batch:
        Pending-frame threshold that skips the gather window.
    """

    def __init__(self, directory: str, *, segment_bytes: int = 4 * 1024 * 1024,
                 fsync_interval_ms: float = 0.0,
                 fsync_batch: int = 256) -> None:
        self.directory = directory
        self.segment_bytes = max(1024, int(segment_bytes))
        self.fsync_interval = max(0.0, float(fsync_interval_ms)) / 1000.0
        self.fsync_batch = max(1, int(fsync_batch))
        os.makedirs(directory, exist_ok=True)
        # _lock guards appends/rotation/state; _sync_lock serialises the
        # group-commit leaders (lock order: _sync_lock before _lock).
        self._lock = threading.Lock()
        self._sync_lock = threading.Lock()
        #: LSN of the last appended / last durable edge (0 = empty log).
        self.appended_lsn = 0
        self.durable_lsn = 0
        # Frame sequence numbers drive durability tickets: rid-only
        # frames advance no LSN but still need an fsync before the ack.
        self._write_seq = 0
        self._synced_seq = 0
        #: Counters surfaced on /stats and /metrics.
        self.appends = 0
        self.fsyncs = 0
        self.bytes_written = 0
        self.segments_created = 0
        self.segments_reclaimed = 0
        self.truncated_bytes = 0
        self.corrupt_dropped_frames = 0
        self._handle = None
        self._active_ordinal = 0
        self._active_bytes = 0
        self._segment_index: Dict[int, Tuple[int, int]] = {}
        self._recover()

    # ------------------------------------------------------------------ #
    # Open / recovery
    # ------------------------------------------------------------------ #
    def _segment_paths(self) -> List[Tuple[int, str]]:
        found = []
        for name in os.listdir(self.directory):
            ordinal = _segment_ordinal(name)
            if ordinal is not None:
                found.append((ordinal, os.path.join(self.directory, name)))
        return sorted(found)

    def _recover(self) -> None:
        segments = self._segment_paths()
        lsn = 0
        drop_rest = False
        for position, (ordinal, path) in enumerate(segments):
            if drop_rest:
                # Everything after an interior corruption point is
                # unusable — its base LSNs would leave a hole.
                scan = scan_segment(path)
                self.corrupt_dropped_frames += sum(
                    1 for f in scan["frames"] if "base" not in f)
                os.remove(path)
                continue
            scan = scan_segment(path)
            base = None
            edges = 0
            for frame in scan["frames"]:
                if base is None and "base" in frame:
                    base = int(frame["base"])
                else:
                    edges += int(frame.get("n", 0))
            final = position == len(segments) - 1
            if scan["error"] is not None:
                # Truncate the file at the last good frame boundary.
                with open(path, "r+b") as handle:
                    handle.truncate(scan["good_bytes"])
                self.truncated_bytes += scan["torn_bytes"]
                if not final:
                    drop_rest = True
                    print(f"[repro.service] WAL {path}: {scan['error']} "
                          f"inside the sequence; truncating the log here "
                          f"and dropping later segments",
                          file=sys.stderr)
            if base is None and not final:
                # A headerless *interior* segment means its frames are
                # gone entirely (filesystem damage, not a torn tail).
                # Later segments would sit past an LSN hole — keep the
                # prefix, drop the rest.
                drop_rest = True
                print(f"[repro.service] WAL {path}: interior segment "
                      f"lost its frames; truncating the log here and "
                      f"dropping later segments", file=sys.stderr)
            if base is None:
                # Headerless (empty or torn-at-birth) segment: adopt it
                # as a continuation — rewrite the header in place.
                base = lsn + 1
                with open(path, "wb") as handle:
                    frame = _encode_frame({"base": base})
                    handle.write(frame)
                    handle.flush()
                    os.fsync(handle.fileno())
            # base may jump past lsn + 1 when earlier segments were
            # reclaimed — LSN accounting simply follows the survivors.
            self._segment_index[ordinal] = (base, edges)
            lsn = base + edges - 1
            self._active_ordinal = ordinal
        self.appended_lsn = lsn
        self.durable_lsn = lsn
        if not self._segment_index:
            self._open_segment(1, base=1)
        else:
            path = os.path.join(
                self.directory, _segment_name(self._active_ordinal))
            self._handle = open(path, "ab")
            self._active_bytes = os.path.getsize(path)

    def _open_segment(self, ordinal: int, *, base: int) -> None:
        path = os.path.join(self.directory, _segment_name(ordinal))
        self._handle = open(path, "ab")
        frame = _encode_frame({"base": base})
        self._handle.write(frame)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._active_ordinal = ordinal
        self._active_bytes = len(frame)
        self._segment_index[ordinal] = (base, 0)
        self.segments_created += 1

    # ------------------------------------------------------------------ #
    # Append / sync
    # ------------------------------------------------------------------ #
    def append(self, entries: List[dict], *, rid: Optional[str] = None,
               invalid: int = 0) -> Tuple[int, int]:
        """Journal one admitted batch; returns ``(last_lsn, ticket)``.

        ``entries`` are ``{"e": edge_json}`` dicts, optionally carrying
        ``"o": [path, position]`` tail-offset tags.  The frame is
        *buffered* — pass the ticket to :meth:`sync` before acking.
        The fault site ``wal.append`` fires before any mutation, so a
        retried append after an injected error never double-writes.
        """
        faults.fire("wal.append")
        payload: dict = {"n": len(entries), "entries": entries}
        if rid is not None:
            payload["rid"] = rid
        if invalid:
            payload["invalid"] = invalid
        frame = _encode_frame(payload)
        with self._lock:
            if self._active_bytes >= self.segment_bytes:
                self._rotate_locked()
            self._handle.write(frame)
            self._active_bytes += len(frame)
            self.bytes_written += len(frame)
            base, count = self._segment_index[self._active_ordinal]
            self._segment_index[self._active_ordinal] = (
                base, count + len(entries))
            self.appended_lsn += len(entries)
            self.appends += 1
            self._write_seq += 1
            return self.appended_lsn, self._write_seq

    def _rotate_locked(self) -> None:
        # Seal the active segment durably before opening its successor —
        # a closed segment is immutable and fully on disk.
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._synced_seq = self._write_seq
        self.durable_lsn = self.appended_lsn
        self.fsyncs += 1
        self._open_segment(self._active_ordinal + 1,
                           base=self.appended_lsn + 1)

    def sync(self, ticket: Optional[int] = None) -> None:
        """Make every frame up to ``ticket`` durable (group commit).

        ``None`` syncs everything appended so far.  Returns immediately
        when a concurrent leader already covered the ticket.  The fault
        site ``wal.fsync`` fires before the fsync — an injected
        ``io_error`` leaves the data buffered and the ticket unsynced,
        exactly like a real fsync failure, so callers retry.
        """
        with self._lock:
            target = self._write_seq if ticket is None else ticket
            if self._synced_seq >= target:
                return
            pending = self._write_seq - self._synced_seq
        if self.fsync_interval > 0 and pending < self.fsync_batch:
            # Gather window: let concurrent appenders join this commit.
            time.sleep(self.fsync_interval)
        with self._sync_lock:
            with self._lock:
                if self._synced_seq >= target:
                    return
                faults.fire("wal.fsync")
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._synced_seq = self._write_seq
                self.durable_lsn = self.appended_lsn
                self.fsyncs += 1

    # ------------------------------------------------------------------ #
    # Replay / retention
    # ------------------------------------------------------------------ #
    def replay(self, after_lsn: int = 0) -> Iterator[Tuple[int, dict]]:
        """Yield ``(first_lsn, payload)`` for every data frame holding
        edges with LSN > ``after_lsn``, plus rid-only frames in the
        scanned segments (they rebuild the dedup window; an edge-free
        frame lost to a reclaimed segment only widens a retry to a
        harmless all-invalid re-admission).

        Flushes the buffer first so the scan sees every appended frame;
        safe to call on a live log between appends.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
        for ordinal, path in self._segment_paths():
            info = self._segment_index.get(ordinal)
            if info is not None:
                base, count = info
                if base + count - 1 <= after_lsn and count > 0:
                    continue
            scan = scan_segment(path)
            lsn = None
            for frame in scan["frames"]:
                if lsn is None and "base" in frame:
                    lsn = int(frame["base"])
                    continue
                if lsn is None:     # headerless tail adopted at boot
                    break
                n = int(frame.get("n", 0))
                first = lsn
                lsn += n
                if n == 0 or lsn - 1 > after_lsn:
                    yield first, frame

    def reclaim(self, cover_lsn: int) -> int:
        """Delete whole segments whose edges all have LSN <=
        ``cover_lsn`` (never the active segment).  Returns how many were
        removed.  Call with the *oldest kept* checkpoint's WAL position.
        """
        removed = 0
        with self._lock:
            for ordinal, path in self._segment_paths():
                if ordinal == self._active_ordinal:
                    continue
                info = self._segment_index.get(ordinal)
                if info is None:
                    continue
                base, count = info
                if base + count - 1 > cover_lsn:
                    continue
                try:
                    os.remove(path)
                except OSError:
                    continue
                del self._segment_index[ordinal]
                removed += 1
                self.segments_reclaimed += 1
        return removed

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Flush, fsync and close the active segment (idempotent)."""
        with self._sync_lock, self._lock:
            if self._handle is None:
                return
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._synced_seq = self._write_seq
                self.durable_lsn = self.appended_lsn
            finally:
                self._handle.close()
                self._handle = None

    def abort(self) -> None:
        """Crash simulation: drop the handle without fsyncing.  Buffered
        frames reach the OS page cache but are never forced to disk —
        the state a ``kill -9`` leaves behind on a surviving machine.
        (True torn tails are exercised by the chaos harness's real
        ``SIGKILL`` and by tests that truncate segments directly.)"""
        with self._lock:
            handle, self._handle = self._handle, None
        if handle is None:
            return
        try:
            # Detach the raw FD and close it, discarding the buffer.
            raw = handle.detach()
            raw.close()
        except Exception:
            pass

    def counters(self) -> dict:
        """A snapshot of every counter the metrics endpoint exports."""
        with self._lock:
            return {
                "appended_lsn": self.appended_lsn,
                "durable_lsn": self.durable_lsn,
                "appends": self.appends,
                "fsyncs": self.fsyncs,
                "bytes_written": self.bytes_written,
                "segments": len(self._segment_index),
                "segments_created": self.segments_created,
                "segments_reclaimed": self.segments_reclaimed,
                "truncated_bytes": self.truncated_bytes,
                "corrupt_dropped_frames": self.corrupt_dropped_frames,
            }

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        return (f"WriteAheadLog({self.directory!r}, "
                f"lsn={self.appended_lsn}, durable={self.durable_lsn})")
