"""Match sinks: pluggable consumers for :class:`~repro.api.Session` results.

A sink is any callable taking ``(query_name, match)``; plain functions work
directly.  This module ships the stock ones:

* :class:`ListSink` — collect ``(name, match)`` pairs in memory (safe to
  append from concurrent matcher threads);
* :class:`JSONLSink` — append one JSON object per match to a file, the
  format downstream alerting pipelines ingest;
* :class:`RotatingJSONLSink` — JSONL across numbered segment files that
  rotate on demand, the exactly-once delivery primitive the service
  layer's checkpoint barrier rides on;
* :func:`printing_sink` — human-readable one-liners to any text stream.

File-backed sinks have deterministic lifecycle semantics — ``flush()``
pushes buffered records to the OS, ``close()`` is idempotent, writing
after close raises — because a long-running service must be able to
rotate and close sinks at exact points (checkpoint barriers, graceful
shutdown) and *know* what reached disk.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Hashable, IO, Iterator, List, Optional, Tuple, Union

from . import faults
from .core.matches import Match
from .core.query import ANY


class ListSink:
    """Collects every delivered match in arrival order.

    Iterating yields ``(query_name, match)`` pairs; ``matches`` is the
    bare match list.

    Cross-thread use: matchers running in different threads (e.g. a
    thread-sharded session, or a service worker plus a direct caller) may
    deliver concurrently.  Appends go through a lock so records never
    interleave mid-update, and the read accessors snapshot the list —
    iteration never observes a half-applied :meth:`clear`.
    """

    def __init__(self) -> None:
        self.records: List[Tuple[str, Match]] = []
        self._lock = threading.Lock()

    def __call__(self, name: str, match: Match) -> None:
        with self._lock:
            self.records.append((name, match))

    @property
    def matches(self) -> List[Match]:
        with self._lock:
            return [match for _, match in self.records]

    def for_query(self, name: str) -> List[Match]:
        """The collected matches of one query."""
        with self._lock:
            return [match for n, match in self.records if n == name]

    def clear(self) -> None:
        with self._lock:
            self.records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self.records)

    def __iter__(self) -> Iterator[Tuple[str, Match]]:
        with self._lock:
            return iter(list(self.records))

    def __repr__(self) -> str:
        return f"ListSink({len(self)} matches)"


def _json_safe(value: Hashable):
    """Labels can be tuples, ints, the ANY wildcard… make them JSON-able."""
    if value is ANY:
        return "*"
    if isinstance(value, tuple):
        return [_json_safe(part) for part in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def match_record(name: str, match: Match) -> dict:
    """The canonical JSON-able record for one delivered match.

    One function owns the shape so every delivery path — the JSONL sinks
    here, the service layer's WebSocket subscriptions — emits identical
    records.
    """
    return {
        "query": name,
        "matched_at": match.latest_timestamp(),
        "edges": {
            str(edge_id): {
                "src": _json_safe(edge.src),
                "dst": _json_safe(edge.dst),
                "timestamp": edge.timestamp,
                "label": _json_safe(edge.label),
            }
            for edge_id, edge in match.edge_map.items()
        },
    }


class JSONLSink:
    """Appends one JSON object per match to a path or text file object.

    Each line looks like::

        {"query": "exfil", "matched_at": 8.0,
         "edges": {"t1": {"src": ..., "dst": ..., "timestamp": ...,
                          "label": ...}, ...}}

    Lifecycle: every record is flushed to the OS as it is written (alerts
    must reach tailing consumers immediately, and a crash must not lose
    buffered records); :meth:`flush` re-asserts that explicitly,
    :meth:`close` is idempotent and flushes first (for caller-owned file
    objects it flushes but leaves the handle open — the caller owns its
    lifetime), and writing after close raises ``ValueError`` instead of
    corrupting a rotated-away file.  Usable as a context manager.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._handle: Optional[IO[str]] = open(
                target, "a", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.count = 0
        self._closed = False

    def __call__(self, name: str, match: Match) -> None:
        if self._closed:
            raise ValueError("sink is closed")
        self._handle.write(
            json.dumps(match_record(name, match), sort_keys=True) + "\n")
        self._handle.flush()
        self.count += 1

    def flush(self) -> None:
        """Push any buffered records to the OS (``ValueError`` if closed)."""
        if self._closed:
            raise ValueError("sink is closed")
        self._handle.flush()

    def close(self) -> None:
        """Flush and close (idempotent).  A caller-owned file object is
        flushed but left open; further writes raise either way."""
        if self._closed:
            return
        self._closed = True
        if self._handle is not None:
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()
            self._handle = None

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = ", closed" if self._closed else ""
        return f"JSONLSink({self.count} matches written{state})"


class RotatingJSONLSink:
    """JSONL match records across numbered segment files.

    Writes ``<prefix>-<n>.jsonl`` segments under ``directory``; a call to
    :meth:`rotate` seals the current segment (flush + fsync + close) and
    opens the next.  The service layer rotates exactly at checkpoint
    barriers: segments at or below the sealed index are *committed*
    (their matches correspond to stream positions the checkpoint
    captured), anything newer is discarded on crash recovery and
    regenerated by replay — which is what makes match delivery
    exactly-once per segment instead of at-least-once.

    Thread-safe; record counting and rotation are atomic with respect to
    writes.
    """

    def __init__(self, directory: str, *, prefix: str = "matches",
                 start_index: int = 0) -> None:
        self.directory = directory
        self.prefix = prefix
        self.index = start_index
        self.count = 0
        self._lock = threading.Lock()
        self._closed = False
        os.makedirs(directory, exist_ok=True)
        self._handle: Optional[IO[str]] = open(
            self.segment_path(self.index), "a", encoding="utf-8")

    def segment_path(self, index: int) -> str:
        """The path of segment ``index``."""
        return os.path.join(self.directory,
                            f"{self.prefix}-{index:06d}.jsonl")

    def __call__(self, name: str, match: Match) -> None:
        line = json.dumps(match_record(name, match), sort_keys=True) + "\n"
        with self._lock:
            if self._closed:
                raise ValueError("sink is closed")
            faults.fire("sink.write")
            self._handle.write(line)
            self.count += 1

    def rotate(self) -> int:
        """Seal the current segment durably; returns its index.

        The sealed file is flushed and fsynced before the next segment
        opens, so a checkpoint that records the returned index can rely
        on every one of its records surviving a crash.
        """
        with self._lock:
            if self._closed:
                raise ValueError("sink is closed")
            sealed = self.index
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self.index += 1
            self._handle = open(
                self.segment_path(self.index), "a", encoding="utf-8")
            return sealed

    def flush(self) -> None:
        """Flush the open segment (``ValueError`` if closed)."""
        with self._lock:
            if self._closed:
                raise ValueError("sink is closed")
            faults.fire("sink.flush")
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the open segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._handle.flush()
            self._handle.close()
            self._handle = None

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def segment_files(self) -> List[str]:
        """Existing segment paths, in index order."""
        try:
            names = sorted(
                name for name in os.listdir(self.directory)
                if name.startswith(self.prefix + "-")
                and name.endswith(".jsonl"))
        except FileNotFoundError:
            return []
        return [os.path.join(self.directory, name) for name in names]

    def __enter__(self) -> "RotatingJSONLSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"RotatingJSONLSink(segment={self.index}, "
                f"{self.count} matches written)")


def printing_sink(stream=None, template: str = "[{name}] match at t={t}"):
    """A sink printing one line per match (default: stdout)."""
    def sink(name: str, match: Match) -> None:
        line = template.format(name=name, t=match.latest_timestamp(),
                               match=match)
        if stream is None:
            print(line)
        else:
            print(line, file=stream)
    return sink
