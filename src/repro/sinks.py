"""Match sinks: pluggable consumers for :class:`~repro.api.Session` results.

A sink is any callable taking ``(query_name, match)``; plain functions work
directly.  This module ships the stock ones:

* :class:`ListSink` — collect ``(name, match)`` pairs in memory;
* :class:`JSONLSink` — append one JSON object per match to a file, the
  format downstream alerting pipelines ingest;
* :func:`printing_sink` — human-readable one-liners to any text stream.
"""

from __future__ import annotations

import json
from typing import Hashable, IO, Iterator, List, Tuple, Union

from .core.matches import Match
from .core.query import ANY


class ListSink:
    """Collects every delivered match in arrival order.

    Iterating yields ``(query_name, match)`` pairs; ``matches`` is the
    bare match list.
    """

    def __init__(self) -> None:
        self.records: List[Tuple[str, Match]] = []

    def __call__(self, name: str, match: Match) -> None:
        self.records.append((name, match))

    @property
    def matches(self) -> List[Match]:
        return [match for _, match in self.records]

    def for_query(self, name: str) -> List[Match]:
        """The collected matches of one query."""
        return [match for n, match in self.records if n == name]

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Tuple[str, Match]]:
        return iter(self.records)

    def __repr__(self) -> str:
        return f"ListSink({len(self.records)} matches)"


def _json_safe(value: Hashable):
    """Labels can be tuples, ints, the ANY wildcard… make them JSON-able."""
    if value is ANY:
        return "*"
    if isinstance(value, tuple):
        return [_json_safe(part) for part in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class JSONLSink:
    """Appends one JSON object per match to a path or text file object.

    Each line looks like::

        {"query": "exfil", "matched_at": 8.0,
         "edges": {"t1": {"src": ..., "dst": ..., "timestamp": ...,
                          "label": ...}, ...}}

    Usable as a context manager; ``close`` is a no-op for caller-owned
    file objects.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.count = 0

    def __call__(self, name: str, match: Match) -> None:
        record = {
            "query": name,
            "matched_at": match.latest_timestamp(),
            "edges": {
                str(edge_id): {
                    "src": _json_safe(edge.src),
                    "dst": _json_safe(edge.dst),
                    "timestamp": edge.timestamp,
                    "label": _json_safe(edge.label),
                }
                for edge_id, edge in match.edge_map.items()
            },
        }
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        # Alerts must reach tailing consumers immediately, and a crash
        # must not lose buffered records.
        self._handle.flush()
        self.count += 1

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"JSONLSink({self.count} matches written)"


def printing_sink(stream=None, template: str = "[{name}] match at t={t}"):
    """A sink printing one line per match (default: stdout)."""
    def sink(name: str, match: Match) -> None:
        line = template.format(name=name, t=match.latest_timestamp(),
                               match=match)
        if stream is None:
            print(line)
        else:
            print(line, file=stream)
    return sink
