"""Edge-label reification: the paper's "imaginary vertex" transformation.

§II remarks that edge labels reduce to the vertex-labelled model: "we can
introduce an imaginary vertex to represent an edge of interest and assign
the edge label to the new imaginary vertex".  This module realises that
reduction for both sides of the problem:

* :func:`reify_query` — each labelled query edge ``u →[ℓ] v`` becomes
  ``u → m → v`` with a fresh mid-vertex ``m`` labelled ``("E", ℓ)``; the
  timing order is carried over (each original constraint maps onto the two
  half-edges so the chain ``in ≺ out`` per edge plus cross constraints
  reproduce the original semantics);
* :func:`reify_stream` — each data edge at time ``t`` splits into two
  arrivals at ``t`` and ``t + δ`` where ``δ`` is a quarter of the gap to the
  next arrival, preserving strict timestamp monotonicity and the relative
  order of distinct original edges.

``tests/test_transform.py`` asserts the semantic equivalence: the reified
query over the reified stream reports exactly the matches of the original
pair (modulo the half-edge bookkeeping).

Boundary semantics under sliding windows: a reified match completes a
quarter-gap later than its original (the final out-half), so matches whose
oldest edge sits within that quarter-gap of the window boundary can differ
between the two encodings.  Exact equivalence holds whenever no window
expiry falls inside a half-edge pair — in particular for landmark windows
(window ≥ stream timespan) and for any stream where inter-arrival gaps are
small relative to the window (the usual case: the reified encoding is a
modelling reduction, not a boundary-exact optimisation).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .core.query import ANY, EdgeId, QueryGraph
from .graph.edge import StreamEdge
from .graph.stream import GraphStream

#: Vertex-label tag for reified mid-vertices.
EDGE_TAG = "E"


def reify_query(query: QueryGraph) -> Tuple[QueryGraph, Dict[EdgeId, Tuple[EdgeId, EdgeId]]]:
    """Vertex-labelled equivalent of an edge-labelled query.

    Returns the transformed query plus a mapping from each original edge id
    to its ``(in_half, out_half)`` edge ids.  Edges whose label is the full
    wildcard are still split (uniformity keeps the mapping total); their
    mid-vertex label is ``(EDGE_TAG, ANY)``, which matches every reified
    mid-vertex.
    """
    reified = QueryGraph()
    for vertex in query.vertices():
        reified.add_vertex(vertex.vertex_id, vertex.label)
    halves: Dict[EdgeId, Tuple[EdgeId, EdgeId]] = {}
    for edge in query.edges():
        mid = ("mid", edge.edge_id)
        reified.add_vertex(mid, (EDGE_TAG, edge.label))
        in_half = ("in", edge.edge_id)
        out_half = ("out", edge.edge_id)
        reified.add_edge(in_half, edge.src, mid)
        reified.add_edge(out_half, mid, edge.dst)
        halves[edge.edge_id] = (in_half, out_half)
        # Per-edge chain: the in-half arrives strictly before the out-half.
        reified.add_timing_constraint(in_half, out_half)
    # Cross constraints: ε ≺ ε′ becomes out(ε) ≺ in(ε′), which (with the
    # per-edge chains) totally orders all four half-edges correctly.
    for before, after in query.timing.direct_constraints():
        reified.add_timing_constraint(halves[before][1], halves[after][0])
    return reified, halves


def reify_stream(stream: GraphStream) -> GraphStream:
    """Split every data edge into two half-arrivals around a mid-vertex.

    The second half lands a quarter-gap after the first, so for any two
    original edges ``σ`` before ``σ′`` all four halves satisfy
    ``σ_in < σ_out < σ′_in < σ′_out`` — relative order is preserved exactly.
    """
    edges: List[StreamEdge] = list(stream)
    reified = GraphStream()
    for index, edge in enumerate(edges):
        if index + 1 < len(edges):
            gap = edges[index + 1].timestamp - edge.timestamp
        else:
            gap = 1.0
        delta = gap * 0.25
        mid = ("mid", edge.edge_id)
        mid_label = (EDGE_TAG, edge.label)
        reified.append(StreamEdge(
            edge.src, mid, src_label=edge.src_label, dst_label=mid_label,
            timestamp=edge.timestamp,
            edge_id=("in", edge.edge_id)))
        reified.append(StreamEdge(
            mid, edge.dst, src_label=mid_label, dst_label=edge.dst_label,
            timestamp=edge.timestamp + delta,
            edge_id=("out", edge.edge_id)))
    return reified


def unreify_edge_map(edge_map: Dict, halves: Dict[EdgeId, Tuple[EdgeId, EdgeId]]) -> Dict[EdgeId, Tuple]:
    """Collapse a reified match back onto original edge ids.

    Returns original edge id → original data ``edge_id`` (recovered from the
    half-edges' structured ids).
    """
    original: Dict[EdgeId, Tuple] = {}
    for original_eid, (in_half, _) in halves.items():
        data_half = edge_map[in_half]
        kind, original_data_id = data_half.edge_id
        assert kind == "in"
        original[original_eid] = original_data_id
    return original
