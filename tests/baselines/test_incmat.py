"""IncMat baseline: anchored re-search + affected-area semantics."""

import pytest

from repro.baselines.incmat import IncMatMatcher
from repro.baselines.naive import NaiveSnapshotMatcher
from repro.isomorphism import ALGORITHMS

from ..conftest import fig3_stream, fig5_query, random_stream


class TestIncMat:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_matches_oracle_on_running_example(self, algorithm):
        q = fig5_query()
        incmat = IncMatMatcher(q, 9.0, ALGORITHMS[algorithm]())
        oracle = NaiveSnapshotMatcher(q, 9.0)
        for edge in fig3_stream():
            assert set(incmat.push(edge)) == set(oracle.push(edge))
            assert set(incmat.current_matches()) == \
                set(oracle.current_matches())

    def test_matches_oracle_on_random_stream(self):
        q = fig5_query()
        incmat = IncMatMatcher(q, 6.0)
        oracle = NaiveSnapshotMatcher(q, 6.0)
        for edge in random_stream(7, 80, 8, labels="abcdef"):
            assert set(incmat.push(edge)) == set(oracle.push(edge))

    def test_name_includes_algorithm(self):
        q = fig5_query()
        assert IncMatMatcher(q, 9.0, ALGORITHMS["TurboISO"]()).name == \
            "IncMat-TurboISO"

    def test_affected_area_bounded_by_diameter(self):
        q = fig5_query()
        incmat = IncMatMatcher(q, 9.0)
        stream = fig3_stream()
        for edge in stream[:5]:
            incmat.push(edge)
        area = incmat.affected_area(stream[4])
        assert {"b3", "c4"} <= area
        assert area <= set(incmat.snapshot.vertices())

    def test_expiry_drops_results_and_registry(self):
        q = fig5_query()
        incmat = IncMatMatcher(q, 9.0)
        for edge in fig3_stream():
            incmat.push(edge)
        # After σ1 expires (t=10) the match must be gone.
        assert incmat.result_count() == 0
        # Registry cleaned: no stale entries for any edge.
        assert not incmat._by_edge

    def test_space_includes_snapshot(self):
        q = fig5_query()
        incmat = IncMatMatcher(q, 9.0)
        for edge in fig3_stream()[:6]:
            incmat.push(edge)
        assert incmat.space_cells() >= incmat.snapshot.logical_space_cells()
