"""Naive per-snapshot matcher (the oracle itself gets sanity checks)."""


from repro import verify_match
from repro.baselines.naive import NaiveSnapshotMatcher

from ..conftest import fig3_stream, fig5_query


class TestNaive:
    def test_running_example(self):
        q = fig5_query()
        matcher = NaiveSnapshotMatcher(q, window=9.0)
        found_at = {}
        for edge in fig3_stream():
            found_at[edge.timestamp] = matcher.push(edge)
        assert len(found_at[8]) == 1
        assert verify_match(q, found_at[8][0].edge_map)
        assert matcher.result_count() == 0   # expired at t=10

    def test_new_matches_contain_the_new_edge(self):
        q = fig5_query()
        matcher = NaiveSnapshotMatcher(q, window=9.0)
        for edge in fig3_stream():
            for match in matcher.push(edge):
                assert match.uses_edge(edge)

    def test_advance_time_only(self):
        q = fig5_query()
        matcher = NaiveSnapshotMatcher(q, window=9.0)
        for edge in fig3_stream():
            if edge.timestamp > 8:
                break
            matcher.push(edge)
        assert matcher.result_count() == 1
        matcher.advance_time(50.0)
        assert matcher.result_count() == 0

    def test_space_is_snapshot_only(self):
        q = fig5_query()
        matcher = NaiveSnapshotMatcher(q, window=9.0)
        for edge in fig3_stream():
            if edge.timestamp > 3:
                break
            matcher.push(edge)
        assert matcher.space_cells() == matcher.snapshot.logical_space_cells()
