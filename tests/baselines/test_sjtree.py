"""SJ-tree baseline: correctness + its deliberate cost characteristics."""

import pytest

from repro.baselines.naive import NaiveSnapshotMatcher
from repro.baselines.sjtree import SJTreeMatcher
from repro import TimingMatcher

from ..conftest import fig3_stream, fig5_query, random_stream


class TestCorrectness:
    def test_matches_oracle_on_running_example(self):
        q = fig5_query()
        sj = SJTreeMatcher(q, 9.0)
        oracle = NaiveSnapshotMatcher(q, 9.0)
        for edge in fig3_stream():
            assert set(sj.push(edge)) == set(oracle.push(edge))
            assert set(sj.current_matches()) == set(oracle.current_matches())

    def test_matches_oracle_on_random_stream(self):
        q = fig5_query()
        sj = SJTreeMatcher(q, 6.0)
        oracle = NaiveSnapshotMatcher(q, 6.0)
        for edge in random_stream(11, 80, 8, labels="abcdef"):
            assert set(sj.push(edge)) == set(oracle.push(edge))

    def test_custom_leaf_order(self):
        q = fig5_query()
        order = [6, 5, 4, 2, 3, 1]
        sj = SJTreeMatcher(q, 9.0, leaf_order=order)
        oracle = NaiveSnapshotMatcher(q, 9.0)
        for edge in fig3_stream():
            assert set(sj.push(edge)) == set(oracle.push(edge))

    def test_bad_leaf_order_rejected(self):
        q = fig5_query()
        with pytest.raises(ValueError):
            SJTreeMatcher(q, 9.0, leaf_order=[6, 5])


class TestCostCharacteristics:
    def test_sjtree_stores_timing_discardable_partials(self):
        """The paper's core criticism: SJ-tree maintains partial matches the
        timing order would discard, so it stores strictly more than Timing
        on the running example (where σ6, σ2... are discardable)."""
        q = fig5_query()
        sj = SJTreeMatcher(q, 9.0)
        timing = TimingMatcher(q, 9.0)
        for edge in fig3_stream():
            sj.push(edge)
            timing.push(edge)
        assert sj.stored_partial_count() > sum(
            timing.store_profile().values())
        assert sj.space_cells() > timing.space_cells()

    def test_posterior_timing_filter_on_root(self):
        """Structurally complete but timing-violating matches are stored at
        the root yet never reported."""
        q = fig5_query()
        sj = SJTreeMatcher(q, 100.0)
        # Feed the running-example edges in reverse-ish time order mapped to
        # fresh timestamps so structure completes but timing fails.
        rows = [("a1", "b3", 1), ("d5", "b3", 2), ("b3", "c4", 3),
                ("d5", "c4", 4), ("c4", "e7", 5), ("e7", "f8", 6)]
        from ..conftest import make_stream
        reported = []
        for edge in make_stream(rows):
            reported.extend(sj.push(edge))
        assert reported == []                      # timing filter rejects
        assert sj.stored_partial_count() > 0       # but the tree stored work
        assert sj.current_matches() == []
