"""Test package (enables relative imports without PYTHONPATH hacks)."""
