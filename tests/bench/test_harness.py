"""Benchmark harness: registries, sweeps, and cross-engine agreement."""

import random

import pytest

from repro.bench.harness import (
    ABLATIONS, METHODS, SweepResult, comparative_sweep,
    run_method_over_queries,
)
from repro.bench.metrics import RunResult
from repro.datasets import generate_wikitalk_stream, generate_query_set, window_slice


@pytest.fixture(scope="module")
def workload():
    stream = generate_wikitalk_stream(800, seed=12)
    rng = random.Random(0)
    queries = generate_query_set(window_slice(stream, 200), sizes=[3],
                                 per_size=1, rng=rng)
    return stream, queries


class TestRegistries:
    def test_method_registry_covers_paper_figures(self):
        assert set(METHODS) == {"Timing", "Timing-IND", "SJ-tree",
                                "QuickSI", "TurboISO", "BoostISO"}

    def test_ablation_registry(self):
        assert set(ABLATIONS) == {"Timing", "Timing-RJ", "Timing-RD",
                                  "Timing-RDJ"}


class TestRunMethodOverQueries:
    def test_all_methods_report_identical_match_counts(self, workload):
        """Correctness across the whole registry: every method must emit the
        same number of matches on the same workload."""
        stream, queries = workload
        counts = {}
        for name, factory in METHODS.items():
            runs = run_method_over_queries(factory, queries, stream, 200,
                                           name=name, max_edges=400)
            counts[name] = [r.matches_emitted for r in runs]
        reference = counts["Timing"]
        for name, got in counts.items():
            assert got == reference, name

    def test_ablations_report_identical_match_counts(self, workload):
        stream, queries = workload
        counts = {}
        for name, factory in ABLATIONS.items():
            runs = run_method_over_queries(factory, queries, stream, 200,
                                           name=name, max_edges=400)
            counts[name] = [r.matches_emitted for r in runs]
        reference = counts["Timing"]
        for name, got in counts.items():
            assert got == reference, name


class TestSweep:
    def test_sweep_result_shapes(self, workload):
        stream, queries = workload
        subset = {"Timing": METHODS["Timing"],
                  "SJ-tree": METHODS["SJ-tree"]}
        sweep = comparative_sweep(
            subset, lambda x: queries, stream, xs=[100, 200],
            window_units_for_x=lambda x: x, max_edges=300)
        assert sweep.xs == [100, 200]
        assert len(sweep.throughput["Timing"]) == 2
        assert len(sweep.space_kb["SJ-tree"]) == 2
        assert all(v > 0 for v in sweep.throughput["Timing"])

    def test_record_rejects_empty(self):
        sweep = SweepResult([1])
        with pytest.raises(ValueError):
            sweep.record("x", [])
        sweep.record("x", [RunResult("x")])
        assert sweep.answers["x"] == [0.0]
