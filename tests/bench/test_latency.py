"""LatencyRecorder percentiles and run_stream integration."""

import pytest

from repro import TimingMatcher
from repro.bench.metrics import LatencyRecorder, run_stream

from ..conftest import fig3_stream, fig5_query


class TestLatencyRecorder:
    def test_empty(self):
        recorder = LatencyRecorder()
        assert recorder.p50 == 0.0
        assert recorder.max == 0.0

    def test_percentiles(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):          # 1..100
            recorder.record(float(value))
        assert recorder.p50 == 51.0          # nearest-rank
        assert recorder.p95 == 96.0
        assert recorder.p99 == 100.0
        assert recorder.max == 100.0

    def test_fraction_validation(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        with pytest.raises(ValueError):
            recorder.percentile(1.5)

    def test_run_stream_integration(self):
        recorder = LatencyRecorder()
        matcher = TimingMatcher(fig5_query(), window=9.0)
        result = run_stream(matcher, fig3_stream(), latency=recorder)
        assert result.edges_processed == 10
        assert len(recorder.samples) == 10
        assert recorder.p99 >= recorder.p50 > 0.0
