"""Measurement utilities: RunResult arithmetic and run_stream wiring."""

import pytest

from repro import TimingMatcher
from repro.bench.metrics import CELL_BYTES, RunResult, cells_to_kb, run_stream
from repro.bench.reporting import format_series_table, shape_check_monotone

from ..conftest import fig3_stream, fig5_query


class TestCells:
    def test_conversion(self):
        assert cells_to_kb(1024 // CELL_BYTES) == pytest.approx(1.0)
        assert cells_to_kb(0) == 0.0


class TestRunResult:
    def test_zero_division_guards(self):
        r = RunResult("x")
        assert r.throughput == 0.0
        assert r.avg_space_kb == 0.0

    def test_averaging(self):
        r = RunResult("x")
        r.space_samples_cells = [100, 300]
        assert r.avg_space_cells == 200
        r.edges_processed = 50
        r.elapsed_seconds = 2.0
        assert r.throughput == 25.0
        assert "x" in repr(r)


class TestRunStream:
    def test_counts_and_samples(self):
        matcher = TimingMatcher(fig5_query(), window=9.0)
        result = run_stream(matcher, fig3_stream(), space_sample_every=3)
        assert result.edges_processed == 10
        assert result.matches_emitted == 1
        assert result.elapsed_seconds > 0
        assert len(result.space_samples_cells) >= 4
        assert result.final_answer_count == 0   # match expired at t=10

    def test_engine_name_detection(self):
        # Engines carry a protocol-level ``name`` since the API redesign.
        matcher = TimingMatcher(fig5_query(), window=9.0)
        assert run_stream(matcher, []).engine_name == "Timing"
        assert run_stream(matcher, [], name="Custom").engine_name == "Custom"


class TestReporting:
    def test_table_contains_series(self):
        text = format_series_table(
            "Fig X", "window", [10, 20],
            {"Timing": [1.0, 2.0], "SJ-tree": [3.0, 4.0]},
            note="units: edges/s")
        assert "Fig X" in text and "Timing" in text and "SJ-tree" in text
        assert "units: edges/s" in text
        assert "10" in text and "4.0" in text

    def test_table_handles_short_series(self):
        text = format_series_table("T", "x", [1, 2], {"A": [5.0]})
        assert "--" in text

    def test_shape_check(self):
        assert shape_check_monotone([10, 8, 9, 5], decreasing=True)
        assert not shape_check_monotone([5, 9, 8, 10], decreasing=True)
        assert shape_check_monotone([1, 2, 3], decreasing=False)
        assert shape_check_monotone([7], decreasing=True)
