"""Unit tests for the bench-trend aggregator (repro.bench.trend)."""

import json

import pytest

from repro.bench import trend


def write_report(path, **fields):
    path.write_text(json.dumps(fields), encoding="utf-8")


class TestPrNumber:
    @pytest.mark.parametrize("name,expected", [
        ("BENCH_pr2.json", 2),
        ("bench_pr9_ci.json", 9),
        ("some/dir/BENCH_pr12.json", 12),
        ("notes.json", None),
        ("trend.md", None),
    ])
    def test_extraction(self, name, expected):
        assert trend.pr_number(name) == expected


class TestCollect:
    def test_reads_reports_and_skips_garbage(self, tmp_path):
        write_report(tmp_path / "BENCH_pr2.json",
                     benchmark="pr2-indexing", speedup=5.5)
        write_report(tmp_path / "BENCH_pr9.json",
                     benchmark="pr9-sharding", speedup=2.8,
                     wall_speedup=2.1)
        (tmp_path / "BENCH_pr3.json").write_text("{not json",
                                                 encoding="utf-8")
        write_report(tmp_path / "BENCH_pr4.json", benchmark="no-gate")
        write_report(tmp_path / "unrelated.json", speedup=1.0)
        reports = trend.collect(str(tmp_path), "BENCH_pr*.json")
        assert sorted(reports) == [2, 9]
        assert reports[9]["wall_speedup"] == 2.1

    def test_missing_directory_is_empty(self, tmp_path):
        assert trend.collect(str(tmp_path / "nope"), "*.json") == {}


class TestRowsAndMarkdown:
    def test_join_and_delta(self, tmp_path):
        committed = {2: {"benchmark": "pr2-indexing", "speedup": 5.0},
                     9: {"benchmark": "pr9-sharding", "speedup": 2.8,
                         "wall_speedup": 0.7}}
        fresh = {2: {"benchmark": "pr2-indexing", "speedup": 6.0},
                 9: {"benchmark": "pr9-sharding", "speedup": 2.8,
                     "wall_speedup": 2.4}}
        rows = trend.trend_rows(committed, fresh)
        assert [row["pr"] for row in rows] == [2, 9]
        assert rows[0]["delta"] == "+20.0%"
        assert rows[1]["fresh_wall"] == 2.4
        table = trend.render_markdown(rows)
        assert "| 2 | pr2-indexing | 5.0 | 6.0 | +20.0% | — | — |" \
            in table
        assert "| 9 | pr9-sharding | 2.8 | 2.8 | +0.0% | 0.7 | 2.4 |" \
            in table

    def test_committed_only_renders(self):
        rows = trend.trend_rows({8: {"benchmark": "pr8-wal",
                                     "speedup": 0.79}}, {})
        table = trend.render_markdown(rows)
        assert "| 8 | pr8-wal | 0.79 | — | — | — | — |" in table

    def test_empty_renders_placeholder(self):
        assert "no reports found" in trend.render_markdown([])


class TestCli:
    def test_end_to_end_against_committed_baselines(self, tmp_path,
                                                    capsys):
        write_report(tmp_path / "BENCH_pr2.json",
                     benchmark="pr2-indexing", speedup=5.0)
        ci = tmp_path / "ci"
        ci.mkdir()
        write_report(ci / "bench_pr2_ci.json",
                     benchmark="pr2-indexing", speedup=4.5)
        out = tmp_path / "trend.md"
        assert trend.main(["--committed", str(tmp_path),
                           "--fresh", str(ci),
                           "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "-10.0%" in stdout
        assert out.read_text(encoding="utf-8") == stdout

    def test_repo_baselines_parse(self, capsys):
        # The committed baselines at the repo root must always feed the
        # trend table (every BENCH_pr*.json carries a gated speedup).
        assert trend.main(["--committed", "."]) == 0
        stdout = capsys.readouterr().out
        for pr in (2, 3, 4, 5, 6, 8, 9):
            assert f"| {pr} |" in stdout
