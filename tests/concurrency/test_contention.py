"""Lock-contention reporting from the real-thread executor."""

from repro import TimingMatcher
from repro.concurrency import ConcurrentStreamExecutor

from ..conftest import fig5_query, random_stream


class TestContentionReport:
    def test_grants_counted_and_items_named(self):
        matcher = TimingMatcher(fig5_query(), 4.0)
        executor = ConcurrentStreamExecutor(matcher, num_threads=3)
        executor.run(random_stream(4, 150, 8, labels="abcdef"))
        report = executor.contention_report()
        assert report, "some items must have been locked"
        total_grants = sum(grants for grants, _ in report.values())
        total_waits = sum(waits for _, waits in report.values())
        assert total_grants > 0
        assert total_waits <= total_grants
        # Items follow the engine's naming scheme.
        for item in report:
            assert item[0] in ("L", "L0")

    def test_single_thread_never_waits(self):
        matcher = TimingMatcher(fig5_query(), 4.0)
        executor = ConcurrentStreamExecutor(matcher, num_threads=1)
        executor.run(random_stream(4, 100, 8, labels="abcdef"))
        report = executor.contention_report()
        assert sum(waits for _, waits in report.values()) == 0
