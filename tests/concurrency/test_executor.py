"""Streaming consistency (Definition 11) of the multi-threaded executor.

The paper's Theorem 4/6: the concurrent schedule must produce the same
answers at every time point as the serial chronological execution.  We
verify the observable consequences — identical reported match multisets and
identical final store state — across thread counts, protocols and seeds.
"""

from collections import Counter

import pytest

from repro import TimingMatcher
from repro.concurrency import ConcurrentStreamExecutor

from ..conftest import fig3_stream, fig5_query, random_stream


def serial_reference(query_factory, window, stream):
    matcher = query_factory(window)
    matches = []
    for edge in stream:
        matches.extend(matcher.push(edge))
    return matches, set(matcher.current_matches()), matcher.store_profile()


def fig5_factory(window):
    return TimingMatcher(fig5_query(), window)


class TestStreamingConsistency:
    @pytest.mark.parametrize("num_threads", [1, 2, 4])
    def test_running_example(self, num_threads):
        stream = fig3_stream()
        expected, final, profile = serial_reference(fig5_factory, 9.0, stream)
        matcher = fig5_factory(9.0)
        executor = ConcurrentStreamExecutor(matcher, num_threads=num_threads)
        got = executor.run(stream)
        assert Counter(got) == Counter(expected)
        assert set(matcher.current_matches()) == final
        assert matcher.store_profile() == profile

    @pytest.mark.parametrize("num_threads", [2, 3, 5])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_streams(self, num_threads, seed):
        stream = random_stream(seed, 200, 8, labels="abcdef")
        expected, final, profile = serial_reference(fig5_factory, 4.0, stream)
        matcher = fig5_factory(4.0)
        executor = ConcurrentStreamExecutor(matcher, num_threads=num_threads)
        got = executor.run(stream)
        assert Counter(got) == Counter(expected)
        assert set(matcher.current_matches()) == final
        assert matcher.store_profile() == profile

    @pytest.mark.parametrize("num_threads", [2, 4])
    def test_all_locks_protocol_also_consistent(self, num_threads):
        stream = random_stream(5, 150, 8, labels="abcdef")
        expected, final, _ = serial_reference(fig5_factory, 4.0, stream)
        matcher = fig5_factory(4.0)
        executor = ConcurrentStreamExecutor(
            matcher, num_threads=num_threads, all_locks=True)
        got = executor.run(stream)
        assert Counter(got) == Counter(expected)
        assert set(matcher.current_matches()) == final

    def test_independent_storage_under_concurrency(self):
        stream = random_stream(9, 150, 8, labels="abcdef")
        expected, final, _ = serial_reference(fig5_factory, 4.0, stream)
        matcher = TimingMatcher(fig5_query(), 4.0, use_mstree=False)
        executor = ConcurrentStreamExecutor(matcher, num_threads=4)
        got = executor.run(stream)
        assert Counter(got) == Counter(expected)
        assert set(matcher.current_matches()) == final

    def test_thread_count_validation(self):
        with pytest.raises(ValueError):
            ConcurrentStreamExecutor(fig5_factory(9.0), num_threads=0)
