"""Property-based streaming consistency for the concurrent executor.

Hypothesis drives random query shapes, streams and thread counts through
the real-thread executor; the reported match multiset and final store state
must equal the chronological serial run every time (Definition 11).
Example counts are kept small — each example spins up a thread pool.
"""

import random
from collections import Counter

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import TimingMatcher
from repro.concurrency import ConcurrentStreamExecutor

from ..core.test_engine_properties import (
    build_random_query, build_random_stream,
)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=1_000),
       n_edges=st.integers(min_value=2, max_value=4),
       num_threads=st.integers(min_value=2, max_value=5),
       all_locks=st.booleans())
def test_concurrent_equals_serial(seed, n_edges, num_threads, all_locks):
    rng = random.Random(seed)
    query = build_random_query(rng, n_edges)
    if not query.is_weakly_connected():
        return
    stream = build_random_stream(rng, 120, 7)

    serial = TimingMatcher(build_random_query(random.Random(seed), n_edges),
                           4.0)
    serial_matches = []
    for edge in stream:
        serial_matches.extend(serial.push(edge))

    concurrent = TimingMatcher(query, 4.0)
    executor = ConcurrentStreamExecutor(concurrent, num_threads=num_threads,
                                        all_locks=all_locks)
    got = executor.run(stream)

    assert Counter(got) == Counter(serial_matches)
    assert set(concurrent.current_matches()) == set(serial.current_matches())
    assert concurrent.store_profile() == serial.store_profile()
