"""Item locks with chronological wait-lists (Algorithm 4 semantics)."""

import threading
import time


from repro.concurrency.locks import ItemLock, LockTable


class TestItemLockSerial:
    def test_grant_requires_head_of_waitlist(self):
        lock = ItemLock(("L", 0, 1))
        lock.enqueue((1.0, 0), "X")
        lock.enqueue((2.0, 1), "X")
        done = []
        t = threading.Thread(target=lambda: (lock.acquire((2.0, 1), "X"),
                                             done.append(True)))
        t.start()
        time.sleep(0.05)
        assert not done            # blocked behind the older request
        lock.acquire((1.0, 0), "X")
        lock.release((1.0, 0))
        t.join(timeout=2)
        assert done

    def test_shared_locks_coexist(self):
        lock = ItemLock("item")
        lock.enqueue((1.0, 0), "S")
        lock.enqueue((2.0, 1), "S")
        lock.acquire((1.0, 0), "S")
        acquired = []
        t = threading.Thread(target=lambda: (lock.acquire((2.0, 1), "S"),
                                             acquired.append(True)))
        t.start()
        t.join(timeout=2)
        assert acquired            # S + S compatible, no release needed

    def test_exclusive_blocks_shared(self):
        lock = ItemLock("item")
        lock.enqueue((1.0, 0), "X")
        lock.enqueue((2.0, 1), "S")
        lock.acquire((1.0, 0), "X")
        got = []
        t = threading.Thread(target=lambda: (lock.acquire((2.0, 1), "S"),
                                             got.append(True)))
        t.start()
        time.sleep(0.05)
        assert not got
        lock.release((1.0, 0))
        t.join(timeout=2)
        assert got

    def test_cancel_unblocks_waiters(self):
        lock = ItemLock("item")
        lock.enqueue((1.0, 0), "X")   # will be withdrawn, never acquired
        lock.enqueue((2.0, 1), "X")
        got = []
        t = threading.Thread(target=lambda: (lock.acquire((2.0, 1), "X"),
                                             got.append(True)))
        t.start()
        time.sleep(0.05)
        assert not got
        lock.cancel((1.0, 0))
        t.join(timeout=2)
        assert got


class TestLockTable:
    def test_lock_identity_per_item(self):
        table = LockTable()
        a = table.lock_for(("L", 0, 1))
        b = table.lock_for(("L", 0, 1))
        c = table.lock_for(("L", 0, 2))
        assert a is b
        assert a is not c
        assert len(table.items()) == 2
