"""Shard supervision: dead workers raise ShardDeadError instead of hanging.

Regression tests for the pipe-RPC shutdown hang — before supervision, a
crashed shard process left ``ShardedSession`` blocked in ``conn.recv()``
forever.  Now every RPC polls with a liveness check and an overall
deadline, and ``shard_health()`` reports per-shard liveness.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro import Session, ShardDeadError, StreamEdge
from repro import faults

PAIR_DSL = """
vertex a A
vertex b B
edge e1 a -> b
window 100
"""


def edge(i: int) -> StreamEdge:
    return StreamEdge(f"a{i}", f"b{i}", src_label="A", dst_label="B",
                      timestamp=float(i))


def make_sharded(mode: str, shards: int = 2) -> Session:
    session = Session(sharding=mode, shards=shards)
    session.register("pair", PAIR_DSL)
    return session


def wait_for_death(proc, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while proc.is_alive() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert not proc.is_alive(), "killed shard still alive"


class TestKilledShard:
    def test_os_kill_mid_stream_raises_shard_dead_error(self):
        session = make_sharded("process")
        try:
            session.push_many([edge(i) for i in range(4)])
            # Kill the shard that hosts the query — pushes only address
            # shards with members.
            owner = session._assignments["pair"]
            victim = session._shards[owner].handle.process
            os.kill(victim.pid, signal.SIGKILL)
            wait_for_death(victim)
            with pytest.raises(ShardDeadError):
                for i in range(4, 16):
                    session.push(edge(i))
        finally:
            # The regression: close() used to hang on the dead worker.
            session.close()

    def test_stats_after_kill_raises_not_hangs(self):
        session = make_sharded("process")
        try:
            session.push_many([edge(i) for i in range(4)])
            for shard in session._shards:
                shard.handle.process.kill()
                wait_for_death(shard.handle.process)
            with pytest.raises(ShardDeadError):
                session.stats()
        finally:
            session.close()

    def test_shard_health_reports_dead_worker(self):
        session = make_sharded("process")
        try:
            victim = session._shards[0].handle.process
            victim.kill()
            wait_for_death(victim)
            health = session.shard_health(ping_timeout=1.0)
            assert [h["shard"] for h in health] == [0, 1]
            assert health[0]["alive"] is False
            assert health[0]["responsive"] is False
            assert health[1]["alive"] is True
            assert health[1]["responsive"] is True
        finally:
            session.close()

    def test_shard_health_all_healthy(self):
        session = make_sharded("process")
        try:
            session.push_many([edge(i) for i in range(4)])
            health = session.shard_health(ping_timeout=2.0)
            for entry in health:
                assert entry["alive"] and entry["responsive"]
            assert sum(entry["queries"] for entry in health) == 1
        finally:
            session.close()


class TestRpcDeadline:
    def test_thread_recv_deadline_raises(self):
        session = make_sharded("thread")
        try:
            handle = session._shards[0].handle
            # No request in flight: the worker is alive but will never
            # answer, so only the deadline can end the wait.
            started = time.monotonic()
            with pytest.raises(ShardDeadError, match="RPC deadline"):
                handle.recv(timeout=0.2)
            assert time.monotonic() - started < 5.0
        finally:
            session.close()

    def test_default_rpc_timeout_is_bounded(self):
        session = make_sharded("thread")
        try:
            assert session.rpc_timeout is not None
            assert session.rpc_timeout > 0
        finally:
            session.close()


class TestFaultInjectedKill:
    def test_kill_worker_fault_surfaces_as_shard_dead(self):
        # Pin the pipe transport: under shm the batch hot path never
        # touches shard.rpc.send (only control RPCs do).
        plan = faults.FaultPlan.parse(
            "seed=7;shard.rpc.send=kill_worker:at:5")
        session = Session(sharding="process", shards=2, transport="pipe")
        try:
            with faults.active(plan):
                session.register("pair", PAIR_DSL)
                with pytest.raises(ShardDeadError):
                    for i in range(64):
                        session.push(edge(i))
            assert plan.report()["shard.rpc.send"]["fires"] == 1
        finally:
            session.close()

    def test_kill_worker_on_ring_write_surfaces_as_shard_dead(self):
        plan = faults.FaultPlan.parse(
            "seed=7;shard.ring.write=kill_worker:at:5")
        session = Session(sharding="process", shards=2, transport="shm")
        try:
            with faults.active(plan):
                session.register("pair", PAIR_DSL)
                with pytest.raises(ShardDeadError):
                    for i in range(64):
                        session.push(edge(i))
            assert plan.report()["shard.ring.write"]["fires"] == 1
        finally:
            session.close()


def test_shard_dead_error_reexports():
    import repro
    import repro.api

    assert repro.ShardDeadError is ShardDeadError
    assert repro.api.ShardDeadError is ShardDeadError
    with pytest.raises(AttributeError):
        repro.api.no_such_symbol  # noqa: B018 - attribute probe
