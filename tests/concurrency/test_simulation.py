"""Discrete-event concurrency simulator: protocol properties & figure shapes."""

import pytest

from repro import TimingMatcher
from repro.concurrency.simulation import ConcurrencySimulator, collect_trace

from ..conftest import fig5_query, random_stream


@pytest.fixture(scope="module")
def traces():
    matcher = TimingMatcher(fig5_query(), window=4.0)
    return collect_trace(matcher, random_stream(1, 400, 8, labels="abcdef"))


class TestCollectTrace:
    def test_traces_are_chronological(self, traces):
        stamps = [t.timestamp for t in traces]
        assert stamps == sorted(stamps)

    def test_traces_have_ops_and_requests(self, traces):
        assert traces
        for trace in traces:
            assert trace.kind in ("ins", "del")
            assert trace.requests
            assert "TxnTrace" in repr(trace)

    def test_unmatched_edges_skipped(self):
        matcher = TimingMatcher(fig5_query(), window=4.0)
        stream = random_stream(2, 50, 6, labels="zz")   # labels never match
        assert collect_trace(matcher, stream) == []


class TestSimulator:
    def test_single_worker_makespan_is_total_service(self, traces):
        sim = ConcurrencySimulator(traces, base_cost=1.0, unit_cost=0.0)
        total_ops = sum(len(t.ops) for t in traces)
        assert sim.makespan(1) == pytest.approx(total_ops)

    def test_makespan_never_increases_with_workers(self, traces):
        sim = ConcurrencySimulator(traces)
        spans = [sim.makespan(n) for n in (1, 2, 3, 4, 5)]
        for a, b in zip(spans, spans[1:]):
            assert b <= a + 1e-9

    def test_speedup_bounded_by_thread_count(self, traces):
        sim = ConcurrencySimulator(traces)
        for n in (1, 2, 4):
            assert 1.0 <= sim.speedup(n) <= n + 1e-9

    def test_fine_grained_beats_all_locks(self, traces):
        """The Fig. 19/20 headline: Timing-N speed-up grows with N while
        All-locks-N stays near flat."""
        sim = ConcurrencySimulator(traces)
        fine = sim.speedup_curve([1, 2, 3, 4, 5])
        coarse = sim.speedup_curve([1, 2, 3, 4, 5], all_locks=True)
        assert fine[0] == pytest.approx(1.0)
        assert fine[-1] > fine[0] * 1.2          # speed-up grows
        assert fine[-1] > coarse[-1]             # fine-grained wins
        assert max(coarse) < 1.6                 # all-locks ~flat

    def test_zero_traces(self):
        assert ConcurrencySimulator([]).makespan(3) == 0.0

    def test_worker_validation(self, traces):
        with pytest.raises(ValueError):
            ConcurrencySimulator(traces).makespan(0)

    def test_deterministic(self, traces):
        sim = ConcurrencySimulator(traces)
        assert sim.makespan(3) == sim.makespan(3)
