"""Lock-request prediction must cover the engine's actual access trace."""


from repro import TimingMatcher
from repro.core.guard import TraceGuard
from repro.concurrency.transactions import (
    lock_requests_for_delete, lock_requests_for_insert,
)

from ..conftest import fig3_stream, fig5_query, random_stream


def is_subsequence(needle, haystack):
    it = iter(haystack)
    return all(any(x == y for y in it) for x in needle)


class TestPredictionCoversTrace:
    def test_running_example_insertions(self):
        matcher = TimingMatcher(fig5_query(), window=9.0)
        for edge in fig3_stream():
            expired = matcher.window.push(edge)
            for old in expired:
                predicted = [(i, m) for i, m in
                             lock_requests_for_delete(matcher, old)]
                guard = TraceGuard()
                matcher.delete_edge(old, guard)
                actual = [(item, mode) for item, mode, _ in guard.ops]
                assert is_subsequence(actual, predicted), (actual, predicted)
            predicted = lock_requests_for_insert(matcher, edge)
            guard = TraceGuard()
            matcher.insert_edge(edge, guard)
            actual = [(item, mode) for item, mode, _ in guard.ops]
            assert is_subsequence(actual, predicted), (edge, actual, predicted)

    def test_random_stream_insertions(self):
        matcher = TimingMatcher(fig5_query(), window=6.0)
        for edge in random_stream(3, 120, 8, labels="abcdef"):
            for old in matcher.window.push(edge):
                guard = TraceGuard()
                predicted = lock_requests_for_delete(matcher, old)
                matcher.delete_edge(old, guard)
                actual = [(item, mode) for item, mode, _ in guard.ops]
                assert is_subsequence(actual, predicted)
            guard = TraceGuard()
            predicted = lock_requests_for_insert(matcher, edge)
            matcher.insert_edge(edge, guard)
            actual = [(item, mode) for item, mode, _ in guard.ops]
            assert is_subsequence(actual, predicted)


class TestFig13Pattern:
    """Fig. 13's dispatch example on the running example's decomposition."""

    def test_edge_matching_first_edge_of_q1(self):
        """σ matching only ε6 (first edge of Q¹) needs exactly X(L1¹)."""
        matcher = TimingMatcher(fig5_query(), window=9.0)
        from ..conftest import make_edge
        sigma = make_edge("e9", "f9", 1.0)
        assert lock_requests_for_insert(matcher, sigma) == \
            [(("L", 0, 1), "X")]

    def test_edge_completing_q1_joins_through_global(self):
        """σ matching ε4 (last edge of Q¹): S(L1²), X(L1³), then the global
        cascade S(Ω(Q²)), X(L0²), S(Ω(Q³)), X(L0³) — Fig. 13's Ins(σ13)."""
        matcher = TimingMatcher(fig5_query(), window=9.0)
        from ..conftest import make_edge
        sigma = make_edge("d5", "c11", 1.0)
        got = lock_requests_for_insert(matcher, sigma)
        # Positions of the subqueries in the join order:
        # Q1 = (6,5,4) at index 0, Q2 = (3,1) at 1, Q3 = (2,) at 2.
        assert got == [
            (("L", 0, 2), "S"), (("L", 0, 3), "X"),
            (("L", 1, 2), "S"), (("L0", 2), "X"),
            (("L", 2, 1), "S"), (("L0", 3), "X"),
        ]

    def test_delete_requests_cover_touched_lists(self):
        matcher = TimingMatcher(fig5_query(), window=9.0)
        from ..conftest import make_edge
        sigma = make_edge("d5", "c11", 1.0)   # matches ε4 in Q1 only
        got = lock_requests_for_delete(matcher, sigma)
        assert (("L", 0, 1), "X") in got
        assert (("L", 0, 3), "X") in got
        assert (("L0", 2), "X") in got and (("L0", 3), "X") in got
        assert all(mode == "X" for _, mode in got)

    def test_unmatched_edge_has_no_requests(self):
        matcher = TimingMatcher(fig5_query(), window=9.0)
        from ..conftest import make_edge
        sigma = make_edge("z1", "z2", 1.0)
        assert lock_requests_for_insert(matcher, sigma) == []
        assert lock_requests_for_delete(matcher, sigma) == []
