"""Property tests for the zero-pickle shared-memory shard transport.

The SPSC ring is the part of :mod:`repro.concurrency.transport` where a
bug corrupts answers silently (a torn frame decodes into wrong edges),
so it gets the adversarial coverage: wrap-around placement, full-ring
backpressure, torn-frame rejection and a seeded concurrent soak.  The
codec is covered differentially — encode/decode must reproduce every
field of every row exactly, including the irregular shapes that ride
the pickled overflow lane.
"""

from __future__ import annotations

import threading
import zlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import StreamEdge
from repro.concurrency.sharding import _edge_to_wire
from repro.concurrency.transport import (
    FRAME_HEADER,
    RESULT_PICKLED,
    BatchDecoder,
    BatchEncoder,
    FacadeChannel,
    SpscRing,
    TornFrameError,
    TransportError,
    WorkerChannel,
)


def make_ring(capacity: int) -> SpscRing:
    """A process-local ring: the SPSC logic is buffer-agnostic."""
    return SpscRing(bytearray(16 + capacity))


# --------------------------------------------------------------------- #
# Ring framing
# --------------------------------------------------------------------- #

class TestRingFraming:
    def test_fifo_roundtrip(self):
        ring = make_ring(256)
        payloads = [bytes([i]) * (i % 40) for i in range(20)]
        out = []
        pending = list(payloads)
        while pending or ring.used:
            while pending and ring.try_write(pending[0]):
                pending.pop(0)
            frame = ring.try_read()
            if frame is not None:
                out.append(frame)
        assert out == payloads

    def test_empty_ring_reads_none(self):
        assert make_ring(64).try_read() is None

    def test_oversized_frame_raises(self):
        ring = make_ring(64)
        with pytest.raises(ValueError):
            ring.try_write(b"x" * 64)

    def test_full_ring_backpressure(self):
        ring = make_ring(64)
        payload = b"y" * 20
        assert ring.try_write(payload)
        assert ring.try_write(payload)
        assert not ring.try_write(payload)      # 2 bytes short
        assert ring.try_read() == payload
        assert ring.try_write(payload)          # space reclaimed

    def test_frame_larger_than_tail_remainder_of_empty_ring(self):
        # Regression: with head==tail mid-buffer, a frame bigger than
        # the bytes left before the wrap point must burn them as a skip
        # and land at offset zero — not report the ring full forever.
        ring = make_ring(64)
        for _ in range(3):
            assert ring.try_write(b"a" * 20)    # frame size 28
            assert ring.try_read() == b"a" * 20
        remainder = ring.capacity - ring.head % ring.capacity
        assert ring.used == 0 and 0 < remainder < 46
        # Frame size 46 exceeds the remainder *and* what is free once
        # the remainder is burned, so the first attempt publishes the
        # skip and reports full; the write lands after the consumer
        # drains the skip — eventual progress, never a livelock.
        assert not ring.try_write(b"b" * 38)
        assert ring.try_read() is None          # drains the skip region
        assert ring.try_write(b"b" * 38)
        assert ring.try_read() == b"b" * 38

    def test_sub_marker_stub_is_skipped(self):
        # Land head on capacity-2: too short even for a skip marker.
        ring = make_ring(64)
        assert ring.try_write(b"c" * 26)        # frame size 34
        assert ring.try_read() == b"c" * 26
        assert ring.try_write(b"d" * 20)        # 34 + 28 = 62, 2 left
        assert ring.try_read() == b"d" * 20
        assert ring.capacity - ring.head % ring.capacity == 2
        assert ring.try_write(b"e" * 30)
        assert ring.try_read() == b"e" * 30

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=48), max_size=40),
           st.integers(min_value=56, max_value=96))
    def test_interleaved_roundtrip_property(self, payloads, capacity):
        ring = make_ring(capacity)
        pending = [p for p in payloads if FRAME_HEADER + len(p) <= capacity]
        expected = list(pending)
        out = []
        stalled = 0
        while pending or ring.used:
            progressed = False
            while pending and ring.try_write(pending[0]):
                pending.pop(0)
                progressed = True
            frame = ring.try_read()
            if frame is not None:
                out.append(frame)
                progressed = True
            # One write may legitimately need two reads' worth of space
            # (skip + frame), but zero progress twice running means the
            # ring livelocked.
            stalled = 0 if progressed else stalled + 1
            assert stalled < 2, "ring livelocked"
        assert out == expected

    def test_counters_track_bytes(self):
        ring = make_ring(128)
        assert ring.free == 128 and ring.used == 0
        ring.try_write(b"z" * 10)
        assert ring.used == FRAME_HEADER + 10
        ring.try_read()
        assert ring.used == 0 and ring.head == ring.tail


class TestTornFrames:
    def test_corrupted_payload_rejected(self):
        ring = make_ring(128)
        ring.try_write(b"sensitive-bytes")
        # Flip one payload byte behind the producer's back.
        ring._data[FRAME_HEADER] ^= 0xFF
        with pytest.raises(TornFrameError, match="checksum"):
            ring.try_read()

    def test_corrupted_length_rejected(self):
        ring = make_ring(128)
        ring.try_write(b"abcdef")
        ring._data[0] = 200                     # claims 200 payload bytes
        with pytest.raises(TornFrameError, match="claims"):
            ring.try_read()

    def test_skip_region_past_head_rejected(self):
        ring = make_ring(64)
        ring.try_write(b"")
        ring._data[0:4] = b"\xff\xff\xff\xff"   # forge a skip marker
        with pytest.raises(TornFrameError, match="skip region"):
            ring.try_read()

    def test_good_crc_still_passes(self):
        ring = make_ring(128)
        payload = b"check-me"
        ring.try_write(payload)
        assert zlib.crc32(payload) == int.from_bytes(
            bytes(ring._data[4:8]), "little")
        assert ring.try_read() == payload


class TestConcurrentSoak:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=1_000))
    def test_seeded_producer_consumer(self, seed):
        import random
        rng = random.Random(seed)
        payloads = [rng.randbytes(rng.randrange(0, 120))
                    for _ in range(300)]
        ring = make_ring(256)
        out = []

        def produce():
            for payload in payloads:
                while not ring.try_write(payload):
                    pass

        def consume():
            while len(out) < len(payloads):
                frame = ring.try_read()
                if frame is not None:
                    out.append(frame)

        producer = threading.Thread(target=produce)
        consumer = threading.Thread(target=consume)
        producer.start()
        consumer.start()
        producer.join(30.0)
        consumer.join(30.0)
        assert not producer.is_alive() and not consumer.is_alive()
        assert out == payloads


# --------------------------------------------------------------------- #
# Codec
# --------------------------------------------------------------------- #

def roundtrip(encoder: BatchEncoder, decoder: BatchDecoder, rows,
              seq: int = 1):
    payload, pending = encoder.encode(seq, rows)
    encoder.table.mark_shipped(pending)
    got_seq, got_rows = decoder.decode(payload)
    assert got_seq == seq
    return got_rows


def assert_rows_equal(got_rows, rows):
    assert len(got_rows) == len(rows)
    for (got_idx, got_edge, got_forced), (idx, wire, forced) in zip(
            got_rows, rows):
        assert got_idx == idx
        assert got_forced == forced
        if isinstance(got_edge, StreamEdge):
            assert _edge_to_wire(got_edge) == wire
        else:                       # overflow rows carry the wire tuple
            assert got_edge == wire


def edge_row(idx: int, edge: StreamEdge, forced=None):
    return (idx, _edge_to_wire(edge), forced)


LABELS = st.one_of(st.none(), st.text(max_size=8))
TIMESTAMPS = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.integers(min_value=-2**60, max_value=2**60),
    st.text(max_size=6))


@st.composite
def edges(draw):
    src = draw(st.text(min_size=1, max_size=8))
    dst = draw(st.text(min_size=1, max_size=8))
    timestamp = draw(TIMESTAMPS)
    edge_id = draw(st.one_of(
        st.none(),
        st.integers(min_value=-2**70, max_value=2**70),
        st.tuples(st.text(max_size=4), st.text(max_size=4))))
    return StreamEdge(src, dst,
                      src_label=draw(LABELS), dst_label=draw(LABELS),
                      timestamp=timestamp, label=draw(LABELS),
                      edge_id=edge_id)


class TestCodec:
    def test_typical_batch_roundtrips(self):
        encoder, decoder = BatchEncoder(), BatchDecoder()
        rows = [edge_row(i, StreamEdge(
            f"a{i}", f"b{i}", src_label="A", dst_label="B",
            timestamp=float(i), label="conn")) for i in range(64)]
        assert_rows_equal(roundtrip(encoder, decoder, rows), rows)

    def test_unlabelled_edges_roundtrip(self):
        encoder, decoder = BatchEncoder(), BatchDecoder()
        rows = [edge_row(i, StreamEdge(f"a{i}", "hub", src_label=None,
                                       dst_label=None, timestamp=float(i)))
                for i in range(8)]
        assert_rows_equal(roundtrip(encoder, decoder, rows), rows)

    def test_forced_rows_ride_overflow_in_order(self):
        encoder, decoder = BatchEncoder(), BatchDecoder()
        rows = []
        for i in range(12):
            forced = frozenset({("g", i)}) if i % 3 == 0 else None
            rows.append(edge_row(i, StreamEdge(
                "x", "y", src_label=None, dst_label=None,
                timestamp=float(i)), forced))
        got = roundtrip(encoder, decoder, rows)
        assert [r[0] for r in got] == list(range(12))
        assert_rows_equal(got, rows)

    def test_unhashable_field_falls_back_to_overflow(self):
        encoder, decoder = BatchEncoder(), BatchDecoder()
        rows = [edge_row(0, StreamEdge(["un", "hashable"], "y",
                                       src_label=None, dst_label=None,
                                       timestamp=0.0, edge_id="e0")),
                edge_row(1, StreamEdge("a", "b", src_label=None,
                                       dst_label=None, timestamp=1.0))]
        assert_rows_equal(roundtrip(encoder, decoder, rows), rows)

    def test_string_table_overflow_spills_rows_not_errors(self):
        # Capacity 8 with None pre-bound: a batch citing more distinct
        # strings than fit must still roundtrip (pinned rows overflow).
        encoder, decoder = BatchEncoder(intern_capacity=8), BatchDecoder()
        rows = [edge_row(i, StreamEdge(
            f"v{i}", f"w{i}", src_label=f"S{i}", dst_label=f"D{i}",
            timestamp=float(i), label=f"L{i}")) for i in range(16)]
        assert_rows_equal(roundtrip(encoder, decoder, rows), rows)

    def test_interns_survive_across_batches_and_eviction(self):
        encoder, decoder = BatchEncoder(intern_capacity=8), BatchDecoder()
        for seq in range(1, 30):
            rows = [edge_row(i, StreamEdge(
                f"v{(seq + i) % 11}", f"w{(seq * 3 + i) % 13}",
                src_label=None, dst_label=None,
                timestamp=float(seq), label="e")) for i in range(6)]
            assert_rows_equal(
                roundtrip(encoder, decoder, rows, seq=seq), rows)

    def test_fresh_decoder_detects_desync(self):
        encoder = BatchEncoder()
        rows = [edge_row(0, StreamEdge("a", "b", src_label=None,
                                       dst_label=None, timestamp=0.0))]
        payload, pending = encoder.encode(1, rows)
        encoder.table.mark_shipped(pending)
        payload2, _ = encoder.encode(2, rows)   # no new bindings carried
        with pytest.raises(TransportError, match="desynchronised"):
            BatchDecoder().decode(payload2)

    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.lists(edges(), max_size=10), max_size=5),
           st.integers(min_value=8, max_value=64))
    def test_random_batches_roundtrip_property(self, batches, capacity):
        encoder = BatchEncoder(intern_capacity=capacity)
        decoder = BatchDecoder()
        for seq, batch in enumerate(batches, start=1):
            rows = [edge_row(i, edge) for i, edge in enumerate(batch)]
            assert_rows_equal(
                roundtrip(encoder, decoder, rows, seq=seq), rows)


# --------------------------------------------------------------------- #
# Channel endpoints over real shared memory
# --------------------------------------------------------------------- #

class TestChannels:
    def make_pair(self, **kwargs):
        facade = FacadeChannel(**kwargs)
        worker = WorkerChannel.attach(facade.spec())
        return facade, worker

    def test_batch_and_result_roundtrip(self):
        facade, worker = self.make_pair()
        try:
            rows = [edge_row(i, StreamEdge(
                f"a{i}", "b", src_label=None, dst_label=None,
                timestamp=float(i))) for i in range(32)]
            frame = facade.encode_batch(rows)
            assert frame is not None
            assert facade.try_send(frame)
            payload = worker.try_read()
            assert worker.peek_seq(payload) == 1
            seq, got_rows = worker.decode(payload)
            assert seq == 1
            assert_rows_equal(got_rows, rows)
            import pickle
            blob = pickle.dumps([(0, "pair", ("m",))])
            assert worker.result_fits(blob)
            assert worker.try_send_result(seq, RESULT_PICKLED, blob)
            status, got_blob = facade.try_recv()
            assert status == RESULT_PICKLED and got_blob == blob
        finally:
            worker.close()
            facade.close()

    def test_oversized_batch_returns_none_for_pipe_fallback(self):
        facade, worker = self.make_pair(data_capacity=4096)
        try:
            rows = [edge_row(i, StreamEdge(
                "s%d" % i, "t", src_label=None, dst_label=None,
                timestamp=float(i), label="x" * 64))
                for i in range(512)]
            assert facade.encode_batch(rows) is None
            assert facade.send_seq == 0     # nothing shipped
        finally:
            worker.close()
            facade.close()

    def test_result_seq_desync_raises(self):
        facade, worker = self.make_pair()
        try:
            assert worker.try_send_result(7, RESULT_PICKLED, b"")
            with pytest.raises(TransportError, match="desynchronised"):
                facade.try_recv()
        finally:
            worker.close()
            facade.close()

    def test_close_unlinks_segments(self):
        from multiprocessing import shared_memory
        facade, worker = self.make_pair()
        names = facade.spec()
        worker.close()
        facade.close()
        for name in names.values():
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name).close()
