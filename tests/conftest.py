"""Shared fixtures and builders for the test suite.

The paper's running example (query Q of Fig. 5, stream G of Fig. 3) appears
throughout §II–§IV, so it is provided as a fixture pair; every structural
claim the paper makes about it (TCsub contents, decomposition, the match at
t=8 expiring at t=10, the MS-tree shapes of Figs. 10–11) is asserted
somewhere in the suite.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

import pytest

from repro import QueryGraph, StreamEdge


def make_edge(src: str, dst: str, timestamp: float, label=None,
              label_of=lambda v: v[0]) -> StreamEdge:
    """Stream edge whose vertex labels default to the id's first character
    (the convention of the paper's Fig. 3, where vertex ``e7`` has label
    ``e``)."""
    return StreamEdge(src, dst, src_label=label_of(src),
                      dst_label=label_of(dst), timestamp=timestamp,
                      label=label)


def make_stream(rows: Sequence[Tuple[str, str, float]]) -> List[StreamEdge]:
    return [make_edge(src, dst, ts) for src, dst, ts in rows]


def fig5_query() -> QueryGraph:
    """The running-example query Q (Fig. 5): 6 edges, timing orders
    6 ≺ 3 ≺ 1 and 6 ≺ 5 ≺ 4."""
    q = QueryGraph()
    for vid in "abcdef":
        q.add_vertex(vid, vid)
    q.add_edge(1, "a", "b")
    q.add_edge(2, "b", "c")
    q.add_edge(3, "d", "b")
    q.add_edge(4, "d", "c")
    q.add_edge(5, "c", "e")
    q.add_edge(6, "e", "f")
    q.add_timing_chain(6, 3, 1)
    q.add_timing_chain(6, 5, 4)
    return q


def fig3_stream() -> List[StreamEdge]:
    """The running-example stream G (Fig. 3), σ1..σ10 at t=1..10."""
    rows = [
        ("e7", "f8", 1), ("c4", "e9", 2), ("c4", "e7", 3), ("d5", "c4", 4),
        ("b3", "c4", 5), ("a2", "b3", 6), ("d5", "b3", 7), ("a1", "b3", 8),
        ("d6", "c4", 9), ("d5", "e7", 10),
    ]
    return make_stream(rows)


def path_query(n_edges: int, *, labels: str = "ABC",
               timing: str = "chain") -> QueryGraph:
    """A directed path query v0→v1→…→vn with cyclic labels.

    ``timing``: ``"chain"`` (e0 ≺ e1 ≺ …), ``"reverse"`` or ``"empty"``.
    """
    q = QueryGraph()
    for i in range(n_edges + 1):
        q.add_vertex(f"v{i}", labels[i % len(labels)])
    for i in range(n_edges):
        q.add_edge(f"e{i}", f"v{i}", f"v{i + 1}")
    eids = [f"e{i}" for i in range(n_edges)]
    if timing == "chain":
        q.add_timing_chain(*eids)
    elif timing == "reverse":
        q.add_timing_chain(*reversed(eids))
    elif timing != "empty":
        raise ValueError(timing)
    return q


def random_stream(seed: int, n: int, n_vertices: int, *,
                  labels: str = "AB") -> List[StreamEdge]:
    """Seeded random edge stream over a small vertex population."""
    rng = random.Random(seed)
    t = 0.0
    out = []
    def label_of(v):
        return labels[int(v[1:]) % len(labels)]
    for _ in range(n):
        t += rng.random() * 0.5 + 0.01
        u = f"d{rng.randrange(n_vertices)}"
        v = f"d{rng.randrange(n_vertices)}"
        while v == u:
            v = f"d{rng.randrange(n_vertices)}"
        out.append(StreamEdge(u, v, src_label=label_of(u),
                              dst_label=label_of(v), timestamp=t))
    return out


@pytest.fixture
def running_example_query() -> QueryGraph:
    return fig5_query()


@pytest.fixture
def running_example_stream() -> List[StreamEdge]:
    return fig3_stream()
