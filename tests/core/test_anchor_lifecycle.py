"""Global MS-tree anchor lifecycle: the trickiest pointer bookkeeping.

Anchors are the lazily created depth-1 nodes of ``M₀`` standing in for the
virtual ``L₀¹`` level.  Their lifecycle (create on first level-2 insert,
reuse while alive, die with their Q¹ leaf, survive their children) is where
dangling-pointer bugs would live; these tests pin each transition.
"""

import pytest

from repro.core.mstree import GlobalMSTreeStore, MSTreeTCStore

from ..conftest import make_edge


def build():
    q1 = MSTreeTCStore(1)
    q2 = MSTreeTCStore(1)
    store = GlobalMSTreeStore([q1, q2])
    return store, q1, q2


def sigma(ts):
    return make_edge(f"x{ts}", f"y{ts}", ts)


class TestAnchorLifecycle:
    def test_anchor_created_lazily(self):
        store, q1, q2 = build()
        s1 = sigma(1)
        leaf1 = q1.insert(1, q1.root, (), s1)
        assert leaf1.anchor is None               # no global entry yet
        s2 = sigma(2)
        leaf2 = q2.insert(1, q2.root, (), s2)
        store.insert(2, leaf1, (s1,), leaf2, (s2,))
        assert leaf1.anchor is not None
        assert leaf1.anchor.alive

    def test_anchor_survives_children_and_is_reused(self):
        store, q1, q2 = build()
        s1, s2, s3 = sigma(1), sigma(2), sigma(3)
        leaf1 = q1.insert(1, q1.root, (), s1)
        leaf2 = q2.insert(1, q2.root, (), s2)
        store.insert(2, leaf1, (s1,), leaf2, (s2,))
        anchor = leaf1.anchor
        q2.delete_edge(s2)                        # child dies, anchor stays
        assert store.count(2) == 0
        assert anchor.alive
        leaf3 = q2.insert(1, q2.root, (), s3)
        store.insert(2, leaf1, (s1,), leaf3, (s3,))
        assert leaf1.anchor is anchor             # reused, not re-created
        assert store.tree.count(1) == 1

    def test_anchor_dies_with_its_leaf(self):
        store, q1, q2 = build()
        s1, s2 = sigma(1), sigma(2)
        leaf1 = q1.insert(1, q1.root, (), s1)
        leaf2 = q2.insert(1, q2.root, (), s2)
        store.insert(2, leaf1, (s1,), leaf2, (s2,))
        anchor = leaf1.anchor
        q1.delete_edge(s1)
        assert not anchor.alive
        assert leaf1.anchor is None               # back-pointer cleared
        assert store.tree.node_count == 0
        # The Q² match itself is untouched.
        assert q2.count(1) == 1

    def test_dependents_cleaned_on_global_node_death(self):
        store, q1, q2 = build()
        s1, s2 = sigma(1), sigma(2)
        leaf1 = q1.insert(1, q1.root, (), s1)
        leaf2 = q2.insert(1, q2.root, (), s2)
        node = store.insert(2, leaf1, (s1,), leaf2, (s2,))
        assert node in leaf2.dependents
        q1.delete_edge(s1)                        # kills node via cascade
        assert node not in leaf2.dependents       # no dangling dependent

    def test_fresh_q1_match_gets_fresh_anchor(self):
        store, q1, q2 = build()
        s1, s2, s4 = sigma(1), sigma(2), sigma(4)
        leaf1 = q1.insert(1, q1.root, (), s1)
        leaf2 = q2.insert(1, q2.root, (), s2)
        store.insert(2, leaf1, (s1,), leaf2, (s2,))
        q1.delete_edge(s1)
        # A new Q¹ match arrives; joining builds a brand-new anchor.
        leaf4 = q1.insert(1, q1.root, (), s4)
        store.insert(2, leaf4, (s4,), leaf2, (s2,))
        assert store.count(2) == 1
        assert leaf4.anchor is not None and leaf4.anchor.alive
