"""Global MS-tree anchor lifecycle: the trickiest pointer bookkeeping.

Anchors are the lazily created depth-1 nodes of ``M₀`` standing in for the
virtual ``L₀¹`` level.  Their lifecycle (create on first level-2 insert,
reuse while alive, die with their Q¹ leaf, survive their children) is where
dangling-pointer bugs would live; these tests pin each transition.

Anchor and dependency bookkeeping lives in per-global-store registries
(``anchor_of`` / ``dependents_of``) rather than on the subquery nodes: a
shared sub-plan store may feed several queries' global trees, each with its
own anchors.
"""


from repro.core.mstree import GlobalMSTreeStore, MSTreeTCStore

from ..conftest import make_edge


def build():
    q1 = MSTreeTCStore(1)
    q2 = MSTreeTCStore(1)
    store = GlobalMSTreeStore([q1, q2])
    return store, q1, q2


def sigma(ts):
    return make_edge(f"x{ts}", f"y{ts}", ts)


class TestAnchorLifecycle:
    def test_anchor_created_lazily(self):
        store, q1, q2 = build()
        s1 = sigma(1)
        leaf1 = q1.insert(1, q1.root, (), s1)
        assert store.anchor_of(leaf1) is None     # no global entry yet
        s2 = sigma(2)
        leaf2 = q2.insert(1, q2.root, (), s2)
        store.insert(2, leaf1, (s1,), leaf2, (s2,))
        anchor = store.anchor_of(leaf1)
        assert anchor is not None
        assert anchor.alive

    def test_anchor_survives_children_and_is_reused(self):
        store, q1, q2 = build()
        s1, s2, s3 = sigma(1), sigma(2), sigma(3)
        leaf1 = q1.insert(1, q1.root, (), s1)
        leaf2 = q2.insert(1, q2.root, (), s2)
        store.insert(2, leaf1, (s1,), leaf2, (s2,))
        anchor = store.anchor_of(leaf1)
        q2.delete_edge(s2)                        # child dies, anchor stays
        assert store.count(2) == 0
        assert anchor.alive
        leaf3 = q2.insert(1, q2.root, (), s3)
        store.insert(2, leaf1, (s1,), leaf3, (s3,))
        assert store.anchor_of(leaf1) is anchor   # reused, not re-created
        assert store.tree.count(1) == 1

    def test_anchor_dies_with_its_leaf(self):
        store, q1, q2 = build()
        s1, s2 = sigma(1), sigma(2)
        leaf1 = q1.insert(1, q1.root, (), s1)
        leaf2 = q2.insert(1, q2.root, (), s2)
        store.insert(2, leaf1, (s1,), leaf2, (s2,))
        anchor = store.anchor_of(leaf1)
        q1.delete_edge(s1)
        assert not anchor.alive
        assert store.anchor_of(leaf1) is None     # registry entry cleared
        assert store.tree.node_count == 0
        # The Q² match itself is untouched.
        assert q2.count(1) == 1

    def test_dependents_cleaned_on_global_node_death(self):
        store, q1, q2 = build()
        s1, s2 = sigma(1), sigma(2)
        leaf1 = q1.insert(1, q1.root, (), s1)
        leaf2 = q2.insert(1, q2.root, (), s2)
        node = store.insert(2, leaf1, (s1,), leaf2, (s2,))
        assert node in store.dependents_of(leaf2)
        q1.delete_edge(s1)                        # kills node via cascade
        assert node not in store.dependents_of(leaf2)  # no dangling dependent

    def test_fresh_q1_match_gets_fresh_anchor(self):
        store, q1, q2 = build()
        s1, s2, s4 = sigma(1), sigma(2), sigma(4)
        leaf1 = q1.insert(1, q1.root, (), s1)
        leaf2 = q2.insert(1, q2.root, (), s2)
        store.insert(2, leaf1, (s1,), leaf2, (s2,))
        q1.delete_edge(s1)
        # A new Q¹ match arrives; joining builds a brand-new anchor.
        leaf4 = q1.insert(1, q1.root, (), s4)
        store.insert(2, leaf4, (s4,), leaf2, (s2,))
        assert store.count(2) == 1
        anchor4 = store.anchor_of(leaf4)
        assert anchor4 is not None and anchor4.alive
