"""TC decomposition (Algorithm 6), validation, and the Theorem-7 cost model."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decomposition import (
    expected_join_operations, greedy_decomposition, random_decomposition,
    validate_decomposition,
)
from repro.core.tc import tc_subqueries

from ..conftest import fig5_query, path_query


class TestGreedy:
    def test_running_example_decomposition(self):
        """§VI-B: greedy picks {6,5,4}, then {3,1}, then {2}."""
        decomposition = greedy_decomposition(fig5_query())
        assert decomposition == [(6, 5, 4), (3, 1), (2,)]

    def test_full_chain_path_gives_single_subquery(self):
        q = path_query(4, timing="chain")
        assert greedy_decomposition(q) == [("e0", "e1", "e2", "e3")]

    def test_empty_order_gives_singletons(self):
        q = path_query(3, timing="empty")
        decomposition = greedy_decomposition(q)
        assert sorted(decomposition) == [("e0",), ("e1",), ("e2",)]

    def test_greedy_is_deterministic(self):
        q = fig5_query()
        assert greedy_decomposition(q) == greedy_decomposition(q)

    def test_validates(self):
        q = fig5_query()
        validate_decomposition(q, greedy_decomposition(q))


class TestRandom:
    def test_random_decomposition_is_valid(self):
        q = fig5_query()
        for seed in range(10):
            decomposition = random_decomposition(q, random.Random(seed))
            validate_decomposition(q, decomposition)

    def test_random_can_differ_from_greedy(self):
        q = fig5_query()
        greedy = greedy_decomposition(q)
        seen_different = any(
            random_decomposition(q, random.Random(seed)) != greedy
            for seed in range(20))
        assert seen_different

    def test_random_never_smaller_than_greedy(self):
        """Greedy minimises cardinality among the strategies used here (it
        always takes a maximum-size TC-subquery first on this query)."""
        q = fig5_query()
        k_greedy = len(greedy_decomposition(q))
        for seed in range(20):
            assert len(random_decomposition(q, random.Random(seed))) >= k_greedy


class TestValidation:
    def test_rejects_overlap(self):
        q = fig5_query()
        with pytest.raises(ValueError, match="share edges"):
            validate_decomposition(q, [(6, 5, 4), (4,), (3, 1), (2,)])

    def test_rejects_missing_edges(self):
        q = fig5_query()
        with pytest.raises(ValueError, match="misses"):
            validate_decomposition(q, [(6, 5, 4), (3, 1)])

    def test_rejects_non_tc_part(self):
        q = fig5_query()
        with pytest.raises(ValueError, match="not a timing sequence"):
            validate_decomposition(q, [(6, 5), (4, 3, 1), (2,)])

    def test_rejects_empty_part(self):
        q = fig5_query()
        with pytest.raises(ValueError, match="empty"):
            validate_decomposition(q, [(), (6, 5, 4), (3, 1), (2,)])


class TestCostModel:
    def test_theorem7_formula(self):
        """N = (1/d)(|E(Q)| − 1 + k(k−1)/2)."""
        q = fig5_query()
        d = q.distinct_term_labels()
        assert expected_join_operations(q, 1) == pytest.approx(5 / d)
        assert expected_join_operations(q, 3) == pytest.approx((5 + 3) / d)
        assert expected_join_operations(q, 6) == pytest.approx((5 + 15) / d)

    def test_cost_increases_with_k(self):
        """The paper's conclusion: prefer the smallest decomposition."""
        q = fig5_query()
        costs = [expected_join_operations(q, k) for k in range(1, 7)]
        assert costs == sorted(costs)
        assert costs[0] < costs[-1]


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=5),
       st.sampled_from(["chain", "reverse", "empty"]),
       st.integers(min_value=0, max_value=999))
def test_property_decompositions_always_valid(n_edges, timing, seed):
    q = path_query(n_edges, timing=timing)
    subs = tc_subqueries(q)
    validate_decomposition(q, greedy_decomposition(q, subs))
    validate_decomposition(q, random_decomposition(q, random.Random(seed), subs))
