"""The Lemma-1 discardability probe (engine.is_discardable)."""


from repro import TimingMatcher

from ..conftest import fig3_stream, fig5_query, make_edge


class TestIsDiscardable:
    def test_paper_example_sigma6(self):
        """§III-A: σ6 at t=6 matches only edge 1 whose prerequisite 3 is
        unmatched — discardable."""
        matcher = TimingMatcher(fig5_query(), window=9.0)
        stream = fig3_stream()
        for edge in stream[:5]:
            matcher.push(edge)
        sigma6 = stream[5]
        assert matcher.is_discardable(sigma6)

    def test_first_sequence_edge_never_discardable(self):
        """An arrival matching the first edge of a timing sequence is itself
        a match of Preq(ε₁) — never discardable."""
        matcher = TimingMatcher(fig5_query(), window=9.0)
        sigma1 = make_edge("e7", "f8", 1)
        assert not matcher.is_discardable(sigma1)

    def test_unmatched_labels_are_discardable(self):
        matcher = TimingMatcher(fig5_query(), window=9.0)
        assert matcher.is_discardable(make_edge("z1", "z2", 1))

    def test_probe_has_no_side_effects(self):
        matcher = TimingMatcher(fig5_query(), window=9.0)
        for edge in fig3_stream()[:5]:
            matcher.push(edge)
        before = matcher.store_profile()
        cells = matcher.space_cells()
        matcher.is_discardable(make_edge("a9", "b3", 5.5))
        assert matcher.store_profile() == before
        assert matcher.space_cells() == cells

    def test_probe_agrees_with_push_outcome(self):
        """Discardable ⟺ pushing stores nothing (on a fresh twin engine)."""
        import copy
        stream = fig3_stream()
        reference = TimingMatcher(fig5_query(), window=9.0)
        for edge in stream:
            probe = reference.is_discardable(edge)
            before = reference.space_cells()
            reference.push(edge)
            stored_nothing = reference.space_cells() == before
            # Expiry can also shrink the store; only assert the forward
            # implication that is exact: a discardable edge stores nothing.
            if probe:
                assert reference.space_cells() <= before
            else:
                assert not stored_nothing or reference.stats.expired_edges
