"""TimingMatcher: Algorithm 1/2 behaviour on the paper's running example
plus engine-level unit behaviour (discardability, stats, space, variants)."""

import pytest

from repro import Match, TimingMatcher, verify_match

from ..conftest import fig3_stream, fig5_query, make_edge, path_query


@pytest.fixture
def q():
    return fig5_query()


class TestRunningExample:
    def test_match_found_at_t8(self, q):
        """The paper's match g (σ1,σ3,σ4,σ5,σ7,σ8) is reported exactly when
        σ8 arrives, and no earlier."""
        matcher = TimingMatcher(q, window=9.0)
        reported = {}
        for edge in fig3_stream():
            reported[edge.timestamp] = matcher.push(edge)
        assert all(not v for t, v in reported.items() if t != 8)
        assert len(reported[8]) == 1
        match = reported[8][0]
        assert verify_match(q, match.edge_map)
        assert {eid: e.timestamp for eid, e in match.edge_map.items()} == {
            6: 1, 5: 3, 4: 4, 2: 5, 3: 7, 1: 8}

    def test_match_expires_at_t10(self, q):
        """σ1 leaves the window at t=10 (|W| = 9) and g disappears."""
        matcher = TimingMatcher(q, window=9.0)
        for edge in fig3_stream():
            matcher.push(edge)
            if edge.timestamp == 9:
                assert matcher.result_count() == 1
        assert matcher.result_count() == 0

    def test_discardable_edge_sigma6_filtered(self, q):
        """§III-A's example: σ6 (a2→b3 at t=6) matches only edge 1, whose
        prerequisite 3 has no match yet — σ6 must be discarded, storing
        nothing."""
        matcher = TimingMatcher(q, window=9.0)
        for edge in fig3_stream():
            if edge.timestamp == 6:
                before = matcher.space_cells()
                matcher.push(edge)
                assert matcher.space_cells() == before
                assert matcher.stats.edges_discarded >= 1
                break
            matcher.push(edge)

    def test_expansion_list_content_matches_fig7(self, q):
        """After σ9 (t=9), the {6,5,4} list holds: Ω({6}) = {σ1},
        Ω({6,5}) = {σ1σ3}, Ω({6,5,4}) = {σ1σ3σ4, σ1σ3σ9} (Fig. 7)."""
        matcher = TimingMatcher(q, window=9.0)
        for edge in fig3_stream():
            if edge.timestamp > 9:
                break
            matcher.push(edge)
        profile = matcher.store_profile()
        assert profile["L1^1"] == 1
        assert profile["L1^2"] == 1
        assert profile["L1^3"] == 2


class TestEngineConfiguration:
    def test_decomposition_used(self, q):
        matcher = TimingMatcher(q, window=9.0)
        assert matcher.k == 3
        assert set(map(frozenset, matcher.join_order)) == {
            frozenset({6, 5, 4}), frozenset({3, 1}), frozenset({2})}

    def test_explicit_decomposition_respected(self, q):
        decomposition = [(6, 5), (4,), (3, 1), (2,)]
        matcher = TimingMatcher(q, window=9.0, decomposition=decomposition)
        assert matcher.k == 4

    def test_invalid_decomposition_rejected(self, q):
        with pytest.raises(ValueError):
            TimingMatcher(q, window=9.0, decomposition=[(6, 5, 4), (3, 1)])

    def test_unknown_strategies_rejected(self, q):
        with pytest.raises(ValueError):
            TimingMatcher(q, window=9.0, decomposition_strategy="best")
        with pytest.raises(ValueError):
            TimingMatcher(q, window=9.0, join_order_strategy="best")

    def test_all_variants_agree_on_results(self, q):
        """MS-tree/IND × greedy/random × jn/random all report the same
        matches (they differ in cost, never in semantics)."""
        import random
        stream = fig3_stream()
        reference = None
        for use_ms in (True, False):
            for dstrat in ("greedy", "random"):
                for jstrat in ("jn", "random"):
                    m = TimingMatcher(q, window=9.0, use_mstree=use_ms,
                                      decomposition_strategy=dstrat,
                                      join_order_strategy=jstrat,
                                      rng=random.Random(3))
                    got = []
                    for edge in stream:
                        got.extend(m.push(edge))
                    if reference is None:
                        reference = got
                    assert sorted(map(hash, got)) == sorted(map(hash, reference))

    def test_repr(self, q):
        assert "MS-tree" in repr(TimingMatcher(q, window=9.0))
        assert "independent" in repr(
            TimingMatcher(q, window=9.0, use_mstree=False))


class TestSingleTCQuery:
    """k == 1 path: no global list, matches come from the last item."""

    def test_chain_path_query(self):
        q = path_query(2, timing="chain")   # A→B→C with e0 ≺ e1
        m = TimingMatcher(q, window=10.0)
        assert m.k == 1
        e0 = make_edge("a1", "b1", 1.0, label_of=lambda v: {"a1": "A", "b1": "B"}[v])
        e1 = make_edge("b1", "c1", 2.0, label_of=lambda v: {"b1": "B", "c1": "C"}[v])
        assert m.push(e0) == []
        got = m.push(e1)
        assert len(got) == 1
        assert got[0] == Match({"e0": e0, "e1": e1})
        assert m.result_count() == 1

    def test_out_of_order_arrivals_discarded(self):
        q = path_query(2, timing="chain")
        m = TimingMatcher(q, window=10.0)
        # e1-matching edge arrives first: prerequisite missing → discarded.
        e1 = make_edge("b1", "c1", 1.0, label_of=lambda v: {"b1": "B", "c1": "C"}[v])
        e0 = make_edge("a1", "b1", 2.0, label_of=lambda v: {"a1": "A", "b1": "B"}[v])
        assert m.push(e1) == []
        assert m.push(e0) == []
        assert m.result_count() == 0
        assert m.space_cells() > 0    # the e0 match is a valid level-1 entry


class TestAdvanceTime:
    def test_advance_time_expires_without_arrival(self, q):
        matcher = TimingMatcher(q, window=9.0)
        for edge in fig3_stream():
            if edge.timestamp > 9:
                break
            matcher.push(edge)
        assert matcher.result_count() == 1
        matcher.advance_time(30.0)
        assert matcher.result_count() == 0
        assert matcher.space_cells() == 0


class TestStats:
    def test_counters_track_processing(self, q):
        matcher = TimingMatcher(q, window=9.0)
        for edge in fig3_stream():
            matcher.push(edge)
        stats = matcher.stats
        assert stats.edges_seen == 10
        assert stats.matches_emitted == 1
        assert stats.expired_edges == 1      # σ1 at t=10
        assert stats.join_operations > 0
        d = stats.as_dict()
        assert d["edges_seen"] == 10


class TestDeleteSafety:
    def test_deleting_unmatched_edge_is_noop(self, q):
        matcher = TimingMatcher(q, window=9.0)
        zz = make_edge("z1", "z2", 1.0)
        assert matcher.delete_edge(zz) == 0

    def test_current_matches_are_valid(self, q):
        matcher = TimingMatcher(q, window=9.0)
        for edge in fig3_stream():
            matcher.push(edge)
            for match in matcher.current_matches():
                assert verify_match(q, match.edge_map)
