"""Engine edge cases and failure injection.

Covers the inputs a production deployment will eventually throw at the
engine: duplicate identities, out-of-order time, pathological queries
(single edge, all-same-label, star hubs), windows smaller than any match,
and bursty expiry (one arrival expiring hundreds of edges at once).
"""

import pytest

from repro import QueryGraph, StreamEdge, TimingMatcher
from repro.baselines.naive import NaiveSnapshotMatcher

from ..conftest import fig3_stream, fig5_query, make_edge


class TestIdentityAndTime:
    def test_duplicate_in_window_edge_id_rejected(self):
        matcher = TimingMatcher(fig5_query(), window=9.0)
        matcher.push(make_edge("e7", "f8", 1))
        clone = StreamEdge("x", "y", src_label="e", dst_label="f",
                           timestamp=2.0, edge_id=("e7", "f8", 1))
        with pytest.raises(ValueError, match="duplicate in-window edge id"):
            matcher.push(clone)

    def test_same_edge_id_allowed_after_expiry(self):
        matcher = TimingMatcher(fig5_query(), window=2.0)
        matcher.push(StreamEdge("e7", "f8", src_label="e", dst_label="f",
                                timestamp=1.0, edge_id="recycled"))
        matcher.push(make_edge("c4", "e7", 5.0))   # expires the first
        again = StreamEdge("e7", "f8", src_label="e", dst_label="f",
                           timestamp=6.0, edge_id="recycled")
        matcher.push(again)                         # must not raise
        assert matcher.window.current_time == 6.0

    def test_out_of_order_timestamp_rejected(self):
        matcher = TimingMatcher(fig5_query(), window=9.0)
        matcher.push(make_edge("e7", "f8", 5))
        with pytest.raises(ValueError):
            matcher.push(make_edge("c4", "e7", 5))
        with pytest.raises(ValueError):
            matcher.push(make_edge("c4", "e7", 4))


class TestPathologicalQueries:
    def test_single_edge_query(self):
        q = QueryGraph()
        q.add_vertex("x", "a")
        q.add_vertex("y", "b")
        q.add_edge("only", "x", "y")
        matcher = TimingMatcher(q, window=9.0)
        total = sum(len(matcher.push(e)) for e in fig3_stream())
        assert total == 2                        # σ6 and σ8 (a→b)
        assert matcher.k == 1

    def test_all_same_label_star(self):
        """Star query with indistinguishable labels: the combinatorial case
        the injectivity checks must survive."""
        q = QueryGraph()
        q.add_vertex("hub", "A")
        for i in range(3):
            q.add_vertex(f"leaf{i}", "A")
            q.add_edge(f"e{i}", "hub", f"leaf{i}")
        q.add_timing_chain("e0", "e1", "e2")
        matcher = TimingMatcher(q, window=100.0)
        oracle = NaiveSnapshotMatcher(q, window=100.0)
        t = 0.0
        edges = []
        for src in ("h1", "h2"):
            for dst in ("l1", "l2", "l3", "l4"):
                t += 1.0
                edges.append(StreamEdge(src, dst, src_label="A",
                                        dst_label="A", timestamp=t))
        for edge in edges:
            assert set(matcher.push(edge)) == set(oracle.push(edge))
        # 2 hubs × ordered choices of 3 distinct leaves out of 4 with
        # ascending timestamps = C(4,3) per hub.
        assert matcher.result_count() == 8

    def test_window_smaller_than_any_match(self):
        q = fig5_query()
        matcher = TimingMatcher(q, window=0.5)
        total = sum(len(matcher.push(e)) for e in fig3_stream())
        assert total == 0
        assert matcher.space_cells() <= 10   # at most the newest edge's entry


class TestBurstyExpiry:
    def test_single_arrival_expiring_many_edges(self):
        """A long silence followed by one arrival expires the whole window
        in one push — registries and trees must drain completely."""
        q = fig5_query()
        matcher = TimingMatcher(q, window=50.0)
        t = 0.0
        for i in range(300):
            t += 0.1
            matcher.push(StreamEdge(f"d{i % 7}", f"b{i % 5}",
                                    src_label="d", dst_label="b",
                                    timestamp=t))
        assert matcher.space_cells() > 0
        matcher.push(make_edge("e7", "f8", t + 1000.0))
        # Everything but the new arrival expired.
        assert len(matcher.window) == 1
        profile = matcher.store_profile()
        assert sum(profile.values()) == 1    # the σ-matching level-1 entry

    def test_interleaved_advance_and_push(self):
        q = fig5_query()
        matcher = TimingMatcher(q, window=3.0)
        oracle = NaiveSnapshotMatcher(q, window=3.0)
        stream = fig3_stream()
        for edge in stream:
            # Occasionally advance time between arrivals.
            matcher.advance_time(edge.timestamp - 0.01)
            oracle.advance_time(edge.timestamp - 0.01)
            assert set(matcher.push(edge)) == set(oracle.push(edge))
