"""Property-based equivalence: TimingMatcher ≡ naive recomputation oracle.

This is the library's central correctness property (single-threaded
streaming consistency): at every time point, the engine's incremental answer
set must equal what a from-scratch subgraph-isomorphism + timing filter
computes on the snapshot.  Hypothesis drives random queries (structure and
partial orders) and random streams through both implementations.
"""

from __future__ import annotations

import itertools
import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import QueryGraph, StreamEdge, TimingMatcher
from repro.baselines.naive import NaiveSnapshotMatcher


def build_random_query(rng: random.Random, n_edges: int) -> QueryGraph:
    """Random connected query with a random (consistent) partial order."""
    labels = "AB"
    q = QueryGraph()
    vids = []

    def new_vertex():
        vid = f"v{len(vids)}"
        q.add_vertex(vid, rng.choice(labels))
        vids.append(vid)
        return vid

    new_vertex()
    for i in range(n_edges):
        if len(vids) >= 2 and rng.random() < 0.4:
            u, v = rng.sample(vids, 2)
        else:
            u = rng.choice(vids)
            v = new_vertex()
            if rng.random() < 0.5:
                u, v = v, u
        q.add_edge(i, u, v)
    perm = rng.sample(q.edge_ids(), n_edges)
    for a, b in itertools.combinations(perm, 2):
        if rng.random() < 0.4:
            try:
                q.add_timing_constraint(a, b)
            except Exception:
                pass
    return q


def build_random_stream(rng: random.Random, n: int, n_vertices: int):
    edges, t = [], 0.0
    for _ in range(n):
        t += rng.random() + 0.01
        u = f"d{rng.randrange(n_vertices)}"
        v = f"d{rng.randrange(n_vertices)}"
        while v == u:
            v = f"d{rng.randrange(n_vertices)}"
        edges.append(StreamEdge(u, v, src_label="AB"[int(u[1:]) % 2],
                                dst_label="AB"[int(v[1:]) % 2],
                                timestamp=t))
    return edges


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_edges=st.integers(min_value=1, max_value=5),
       window=st.floats(min_value=1.5, max_value=10.0),
       use_mstree=st.booleans())
def test_engine_equals_oracle_at_every_time_point(seed, n_edges, window,
                                                  use_mstree):
    rng = random.Random(seed)
    query = build_random_query(rng, n_edges)
    if not query.is_weakly_connected():
        return
    engine = TimingMatcher(query, window, use_mstree=use_mstree)
    oracle = NaiveSnapshotMatcher(query, window)
    for edge in build_random_stream(rng, 50, 6):
        new_engine = engine.push(edge)
        new_oracle = oracle.push(edge)
        assert set(new_engine) == set(new_oracle)
        assert set(engine.current_matches()) == set(oracle.current_matches())


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_edges=st.integers(min_value=2, max_value=5))
def test_storage_backends_equivalent(seed, n_edges):
    """MS-tree and independent stores must be observationally identical —
    same reported matches *and* same per-item entry counts at every step."""
    rng = random.Random(seed)
    query = build_random_query(rng, n_edges)
    if not query.is_weakly_connected():
        return
    ms = TimingMatcher(query, 5.0, use_mstree=True)
    ind = TimingMatcher(query, 5.0, use_mstree=False)
    for edge in build_random_stream(rng, 60, 5):
        assert set(ms.push(edge)) == set(ind.push(edge))
        assert ms.store_profile() == ind.store_profile()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_space_returns_to_zero_when_window_drains(seed):
    """After all edges expire, no partial matches may linger (no leaks)."""
    rng = random.Random(seed)
    query = build_random_query(rng, 3)
    if not query.is_weakly_connected():
        return
    engine = TimingMatcher(query, 4.0)
    for edge in build_random_stream(rng, 40, 5):
        engine.push(edge)
    engine.advance_time(engine.window.current_time + 100.0)
    assert engine.space_cells() == 0
    assert engine.result_count() == 0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_all_reported_matches_verify(seed):
    from repro import verify_match
    rng = random.Random(seed)
    query = build_random_query(rng, 4)
    if not query.is_weakly_connected():
        return
    engine = TimingMatcher(query, 6.0)
    for edge in build_random_stream(rng, 60, 6):
        for match in engine.push(edge):
            assert verify_match(query, match.edge_map)
            # Every matched data edge must still be inside the window.
            cutoff = edge.timestamp - 6.0
            assert all(e.timestamp > cutoff for e in match.data_edges)
