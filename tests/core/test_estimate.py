"""Sampling-based selectivity estimation and cardinality-driven ordering."""

import pytest

from repro import ANY, QueryGraph, StreamEdge, TimingMatcher
from repro.core.decomposition import greedy_decomposition
from repro.core.estimate import (
    TermLabelStatistics, estimate_subquery_cardinality, estimated_join_order,
)
from repro.core.join_order import is_prefix_connected_order
from repro.datasets import generate_wikitalk_stream

from ..conftest import fig3_stream, fig5_query, make_edge


class TestTermLabelStatistics:
    def test_counts_and_vertices(self):
        stats = TermLabelStatistics.from_edges(fig3_stream())
        assert stats.total_edges == 10
        assert stats.distinct_vertices == 9
        assert stats.term_counts[("a", None, "b", False)] == 2  # σ6, σ8

    def test_match_probability_exact_labels(self):
        q = fig5_query()
        stats = TermLabelStatistics.from_edges(fig3_stream())
        # Edge 1 (a→b): σ6 and σ8 match → 2/10.
        assert stats.edge_match_probability(q, 1) == pytest.approx(0.2)
        # Edge 6 (e→f): only σ1 → 1/10.
        assert stats.edge_match_probability(q, 6) == pytest.approx(0.1)

    def test_match_probability_with_wildcards(self):
        q = QueryGraph()
        q.add_vertex("u", "IP")
        q.add_vertex("v", "IP")
        q.add_edge("e", "u", "v", label=(ANY, 80, "tcp"))
        edges = [
            StreamEdge("a", "b", src_label="IP", dst_label="IP",
                       timestamp=1, label=(5000, 80, "tcp")),
            StreamEdge("b", "c", src_label="IP", dst_label="IP",
                       timestamp=2, label=(5001, 443, "tcp")),
        ]
        stats = TermLabelStatistics.from_edges(edges)
        assert stats.edge_match_probability(q, "e") == pytest.approx(0.5)

    def test_empty_sample(self):
        q = fig5_query()
        assert TermLabelStatistics().edge_match_probability(q, 1) == 0.0

    def test_loop_shape_respected(self):
        q = QueryGraph()
        q.add_vertex("u", "a")
        q.add_edge("loop", "u", "u")
        stats = TermLabelStatistics.from_edges(
            [make_edge("a1", "a1", 1), make_edge("a1", "b1", 2)])
        # Only the self-loop arrival can match the loop query edge.
        assert stats.edge_match_probability(q, "loop") == pytest.approx(0.5)


class TestCardinality:
    def test_monotone_in_window(self):
        q = fig5_query()
        stats = TermLabelStatistics.from_edges(fig3_stream())
        small = estimate_subquery_cardinality(q, (6, 5, 4), stats, 10)
        large = estimate_subquery_cardinality(q, (6, 5, 4), stats, 100)
        assert large > small

    def test_longer_sequences_less_likely_in_sparse_windows(self):
        """When the expected per-edge matches are below the vertex count,
        each join shrinks the estimate (sparse regime — the usual one)."""
        q = fig5_query()
        stats = TermLabelStatistics.from_edges(fig3_stream())
        single = estimate_subquery_cardinality(q, (6,), stats, 10)
        triple = estimate_subquery_cardinality(q, (6, 5, 4), stats, 10)
        assert triple < single


class TestEstimatedJoinOrder:
    def test_prefix_connected_and_complete(self):
        q = fig5_query()
        decomposition = greedy_decomposition(q)
        order = estimated_join_order(q, decomposition, fig3_stream(), 50)
        assert is_prefix_connected_order(q, order)
        assert sorted(map(sorted, order)) == \
            sorted(map(sorted, decomposition))

    def test_single_part_passthrough(self):
        q = fig5_query()
        assert estimated_join_order(q, [(6, 5, 4)], fig3_stream(), 50) == \
            [(6, 5, 4)]

    def test_engine_accepts_estimated_order(self):
        """The explicit join_order parameter feeds the estimate through the
        engine; results must equal the default JN order's."""
        stream = generate_wikitalk_stream(600, seed=31)
        from repro.datasets import generate_query_set, window_slice
        import random
        queries = generate_query_set(window_slice(stream, 150), sizes=[4],
                                     per_size=1, rng=random.Random(2))
        query = queries[2]
        decomposition = greedy_decomposition(query)
        order = estimated_join_order(query, decomposition,
                                     list(stream)[:200], 150)
        duration = stream.window_units_to_duration(150)
        default = TimingMatcher(query, duration)
        estimated = TimingMatcher(query, duration,
                                  decomposition=decomposition,
                                  join_order=order)
        d_matches, e_matches = [], []
        for edge in stream:
            d_matches.extend(default.push(edge))
            e_matches.extend(estimated.push(edge))
        assert set(d_matches) == set(e_matches)

    def test_engine_rejects_bad_explicit_order(self):
        from ..conftest import path_query
        q = fig5_query()
        with pytest.raises(ValueError, match="permutation"):
            TimingMatcher(q, 9.0, decomposition=[(6, 5, 4), (3, 1), (2,)],
                          join_order=[(6, 5, 4), (3, 1)])
        pq = path_query(3, timing="empty")   # decomposes into singletons
        with pytest.raises(ValueError, match="prefix-connected"):
            TimingMatcher(pq, 9.0,
                          decomposition=[("e0",), ("e1",), ("e2",)],
                          join_order=[("e0",), ("e2",), ("e1",)])
