"""Unit tests for the join-key index subsystem (:mod:`repro.core.index`)."""

import pytest

from repro import EngineConfig, QueryGraph, TimingMatcher
from repro.core.index import (
    LevelIndex, StoreIndexes, extension_probe_flags, extension_store_refs,
    key_from_edge, key_from_flat, union_side_refs,
)
from repro.core.join import ExtensionSpec, UnionSpec
from repro.core.mstree import MSTreeTCStore
from repro.core.stores import IndependentTCStore

from ..conftest import make_edge


class TestLevelIndex:
    def test_add_probe_discard(self):
        index = LevelIndex([(0, True)])       # key = slot 0's src
        e1 = make_edge("x1", "y1", 1)
        e2 = make_edge("x1", "y2", 2)
        e3 = make_edge("x2", "y1", 3)
        index.add("h1", (e1,))
        index.add("h2", (e2,))
        index.add("h3", (e3,))
        assert len(index) == 3
        assert index.bucket_count == 2
        assert {h for h, _ in index.probe(("x1",))} == {"h1", "h2"}
        assert index.probe(("zz",)) == []
        index.discard("h1", (e1,))
        assert {h for h, _ in index.probe(("x1",))} == {"h2"}
        index.discard("h2", (e2,))
        assert index.probe(("x1",)) == []
        assert index.bucket_count == 1        # empty buckets are dropped

    def test_discard_is_idempotent(self):
        index = LevelIndex([(0, False)])
        edge = make_edge("x1", "y1", 1)
        index.add("h", (edge,))
        index.discard("h", (edge,))
        index.discard("h", (edge,))           # no KeyError
        assert len(index) == 0

    def test_newest_first_probe_order(self):
        index = LevelIndex([(0, True)], newest_first=True)
        edges = [make_edge("x", f"y{i}", i + 1) for i in range(3)]
        for i, edge in enumerate(edges):
            index.add(f"h{i}", (edge,))
        assert [h for h, _ in index.probe(("x",))] == ["h2", "h1", "h0"]


class TestStoreIndexes:
    def test_registration_is_shared_per_shape(self):
        indexes = StoreIndexes(3)
        a = indexes.register(2, [(0, True)])
        b = indexes.register(2, [(0, True)])
        c = indexes.register(2, [(0, False)])
        assert a is b and a is not c
        assert indexes.index_count() == 2

    def test_keyless_registration_rejected(self):
        indexes = StoreIndexes(2)
        with pytest.raises(ValueError):
            indexes.register(1, [])

    def test_lifecycle_fanout(self):
        indexes = StoreIndexes(2)
        by_src = indexes.register(1, [(0, True)])
        by_dst = indexes.register(1, [(0, False)])
        edge = make_edge("u", "v", 1)
        indexes.on_insert(1, "h", (edge,))
        assert len(by_src) == len(by_dst) == 1
        indexes.on_remove(1, "h", (edge,))
        assert len(by_src) == len(by_dst) == 0


class TestKeyDerivation:
    @pytest.fixture()
    def query(self):
        q = QueryGraph()
        q.add_vertex("a", "A")
        q.add_vertex("b", "B")
        q.add_vertex("c", "A")
        q.add_edge(1, "a", "b")
        q.add_edge(2, "b", "c")
        q.add_timing_chain(1, 2)
        return q

    def test_extension_refs_match_probe_flags(self, query):
        spec = ExtensionSpec(query, (1,), 2)
        refs = extension_store_refs(spec)
        flags = extension_probe_flags(spec)
        # Shared vertex b: dst of slot 0, src of the new edge.
        assert refs == ((0, False),)
        assert flags == (True,)
        stored = make_edge("u", "shared", 1)
        arriving = make_edge("shared", "w", 2)
        assert (key_from_flat(refs, (stored,))
                == key_from_edge(flags, arriving) == ("shared",))

    def test_union_sides_agree_on_shared_vertices(self, query):
        spec = UnionSpec(query, (1,), (2,))
        a_refs = union_side_refs(spec, "a")
        b_refs = union_side_refs(spec, "b")
        assert len(a_refs) == len(b_refs) == len(spec.equal_pairs)
        left = (make_edge("u", "shared", 1),)
        right = (make_edge("shared", "w", 2),)
        assert key_from_flat(a_refs, left) == key_from_flat(b_refs, right)
        with pytest.raises(ValueError):
            union_side_refs(spec, "c")


class TestStoreMaintenance:
    """Indexes registered on real stores stay consistent through expiry."""

    @pytest.mark.parametrize("store_cls",
                             [IndependentTCStore, MSTreeTCStore])
    def test_insert_and_delete_edge_maintain_index(self, store_cls):
        store = store_cls(2)
        index = store.add_index(1, [(0, True)])
        s1 = make_edge("u", "v", 1)
        s2 = make_edge("u", "w", 2)
        h1 = store.insert(1, store.root, (), s1)
        store.insert(1, store.root, (), s2)
        store.insert(2, h1, (s1,), s2)
        assert {flat for _, flat in index.probe(("u",))} == {(s1,), (s2,)}
        store.delete_edge(s1)
        # s1's level-1 entry and the level-2 entry containing it die; the
        # index only tracks level 1, where s2's entry survives.
        assert {flat for _, flat in index.probe(("u",))} == {(s2,)}
        store.delete_edge(s2)
        assert index.probe(("u",)) == []
        assert len(index) == 0

    def test_mstree_cascade_reaches_deeper_levels(self):
        store = MSTreeTCStore(2)
        deep = store.add_index(2, [(1, False)])
        s1 = make_edge("u", "v", 1)
        s2 = make_edge("v", "w", 2)
        h1 = store.insert(1, store.root, (), s1)
        store.insert(2, h1, (s1,), s2)
        assert [flat for _, flat in deep.probe(("w",))] == [(s1, s2)]
        # Deleting the *root* edge removes the level-2 descendant through
        # the subtree cascade, which must clean the level-2 index too.
        store.delete_edge(s1)
        assert deep.probe(("w",)) == []
        assert len(deep) == 0


class TestEngineConfigIndexing:
    def test_validation(self):
        assert EngineConfig().indexing == "hash"
        EngineConfig(indexing="scan").validate()
        with pytest.raises(ValueError):
            EngineConfig(indexing="btree").validate()

    def test_scan_mode_registers_nothing(self):
        q = QueryGraph()
        q.add_vertex("a", "A")
        q.add_vertex("b", "B")
        q.add_vertex("c", "A")
        q.add_edge(1, "a", "b")
        q.add_edge(2, "b", "c")
        scan = TimingMatcher.from_config(q, 10.0, indexing="scan")
        assert not scan._ext_indexes
        assert not scan._union_prefix_indexes
        assert not scan._union_omega_indexes
        hashed = TimingMatcher.from_config(q, 10.0)
        assert (hashed._ext_indexes or hashed._union_prefix_indexes
                or hashed._union_omega_indexes)

    def test_stats_expose_strategy_split(self):
        q = QueryGraph()
        q.add_vertex("a", "A")
        q.add_vertex("b", "B")
        q.add_vertex("c", "A")
        q.add_edge(1, "a", "b")
        q.add_edge(2, "b", "c")
        q.add_timing_chain(1, 2)
        engine = TimingMatcher.from_config(q, 10.0)
        engine.push(make_edge("u", "v", 1.0,
                              label_of=lambda x: {"u": "A", "v": "B"}[x]))
        engine.push(make_edge("v", "w", 2.0,
                              label_of=lambda x: {"v": "B", "w": "A"}[x]))
        stats = engine.stats.as_dict()
        assert "index_probes" in stats and "scan_fallbacks" in stats
        assert stats["index_probes"] > 0
