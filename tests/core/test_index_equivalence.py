"""Differential property test: ``indexing="hash"`` ≡ ``indexing="scan"``.

The join-key index subsystem (:mod:`repro.core.index`) must be a pure
performance optimisation: for any query, storage layout, decomposition size
and stream (including expiry-heavy ones), the indexed engine and the
paper-faithful scanning engine must report identical match multisets,
identical result counts, and identical logical space at every step.
Hypothesis drives randomized scenarios through twin engines in lock-step.
"""

from __future__ import annotations

import random
from collections import Counter

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import EngineConfig, QueryGraph, StreamEdge, TimingMatcher

from .test_engine_properties import build_random_query, build_random_stream


def _twin_engines(query: QueryGraph, window: float, storage: str):
    hash_engine = TimingMatcher.from_config(
        query, window, config=EngineConfig(storage=storage, indexing="hash"))
    scan_engine = TimingMatcher.from_config(
        query, window, config=EngineConfig(storage=storage, indexing="scan"))
    return hash_engine, scan_engine


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_edges=st.integers(min_value=1, max_value=5),
       window=st.floats(min_value=1.5, max_value=10.0),
       storage=st.sampled_from(["mstree", "independent"]))
def test_hash_and_scan_engines_identical(seed, n_edges, window, storage):
    """Per-push match multisets, counts, and space cells all agree.

    The small windows make expiry constant, so index maintenance under
    ``delete_edge`` (including the MS-tree cross-tree cascade) is
    exercised, not just insertion.
    """
    rng = random.Random(seed)
    query = build_random_query(rng, n_edges)
    if not query.is_weakly_connected():
        return
    hash_engine, scan_engine = _twin_engines(query, window, storage)
    for edge in build_random_stream(rng, 60, 6):
        new_hash = hash_engine.push(edge)
        new_scan = scan_engine.push(edge)
        # Multiset equality: simultaneous completions may be reported in a
        # different order, but never with different multiplicities.
        assert Counter(map(repr, new_hash)) == Counter(map(repr, new_scan))
        assert hash_engine.result_count() == scan_engine.result_count()
        assert hash_engine.space_cells() == scan_engine.space_cells()
        assert hash_engine.store_profile() == scan_engine.store_profile()
    assert (hash_engine.stats.matches_emitted
            == scan_engine.stats.matches_emitted)
    # The strategy split: scan never probes, hash never scans a shape that
    # has at least one equality constraint.
    assert scan_engine.stats.index_probes == 0
    assert (scan_engine.stats.scan_fallbacks
            == scan_engine.stats.join_operations)
    assert (hash_engine.stats.index_probes
            + hash_engine.stats.scan_fallbacks
            == hash_engine.stats.join_operations)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       storage=st.sampled_from(["mstree", "independent"]))
def test_k1_chain_equivalence(seed, storage):
    """k=1 (single timing sequence) exercises only the extension-spec
    indexes — no global list exists to mask a bug in them."""
    rng = random.Random(seed)
    query = QueryGraph()
    for vid, label in (("a", "A"), ("b", "B"), ("c", "A"), ("d", "B")):
        query.add_vertex(vid, label)
    query.add_edge(1, "a", "b")
    query.add_edge(2, "b", "c")
    query.add_edge(3, "c", "d")
    query.add_timing_chain(1, 2, 3)
    hash_engine, scan_engine = _twin_engines(query, 6.0, storage)
    assert hash_engine.k == scan_engine.k == 1
    for edge in build_random_stream(rng, 80, 5):
        new_hash = hash_engine.push(edge)
        new_scan = scan_engine.push(edge)
        assert Counter(map(repr, new_hash)) == Counter(map(repr, new_scan))
        assert hash_engine.space_cells() == scan_engine.space_cells()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       storage=st.sampled_from(["mstree", "independent"]))
def test_discardability_probe_agrees_across_strategies(seed, storage):
    """Lemma 1's probe must give the same verdict through an index bucket
    as through a full scan, on every prefix of a random stream."""
    rng = random.Random(seed)
    query = build_random_query(rng, 4)
    if not query.is_weakly_connected():
        return
    hash_engine, scan_engine = _twin_engines(query, 5.0, storage)
    for edge in build_random_stream(rng, 50, 5):
        assert (hash_engine.is_discardable(edge)
                == scan_engine.is_discardable(edge))
        hash_engine.push(edge)
        scan_engine.push(edge)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       storage=st.sampled_from(["mstree", "independent"]))
def test_indexes_drain_with_window(seed, storage):
    """After every edge expires, no index may retain an entry (leak check
    for the removal paths, cascade included)."""
    rng = random.Random(seed)
    query = build_random_query(rng, 4)
    if not query.is_weakly_connected():
        return
    engine = TimingMatcher.from_config(
        query, 4.0, config=EngineConfig(storage=storage, indexing="hash"))
    for edge in build_random_stream(rng, 60, 5):
        engine.push(edge)
    engine.advance_time(engine.window.current_time + 1000.0)
    assert engine.space_cells() == 0
    for index in engine._ext_indexes.values():
        assert len(index) == 0 and index.bucket_count == 0
    for index in engine._union_prefix_indexes.values():
        assert len(index) == 0 and index.bucket_count == 0
    for index in engine._union_omega_indexes.values():
        assert len(index) == 0 and index.bucket_count == 0


def test_duplicate_timestamp_free_stream_with_advances():
    """Deterministic scenario mixing pushes and bare time advances; the
    engines must agree after every operation."""
    rng = random.Random(7)
    query = build_random_query(rng, 3)
    if not query.is_weakly_connected():
        query = build_random_query(random.Random(8), 3)
    hash_engine, scan_engine = _twin_engines(query, 3.0, "mstree")
    t = 0.0
    for step in range(120):
        t += rng.random() + 0.01
        if step % 7 == 3:
            hash_engine.advance_time(t)
            scan_engine.advance_time(t)
            continue
        u = f"d{rng.randrange(5)}"
        v = f"d{(rng.randrange(4) + int(u[1:]) + 1) % 5}"
        edge = StreamEdge(u, v, src_label="AB"[int(u[1:]) % 2],
                          dst_label="AB"[int(v[1:]) % 2], timestamp=t)
        assert (Counter(map(repr, hash_engine.push(edge)))
                == Counter(map(repr, scan_engine.push(edge))))
        assert hash_engine.store_profile() == scan_engine.store_profile()
