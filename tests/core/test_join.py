"""Compiled join specs: ExtensionSpec and UnionSpec (the ⋈ᵀ operator)."""

import pytest

from repro.core.join import ExtensionSpec, UnionSpec, join_candidates

from ..conftest import fig5_query, make_edge


@pytest.fixture
def q():
    return fig5_query()


class TestExtensionSpec:
    """Extending a timing-sequence prefix by the next matching edge."""

    def test_valid_extension(self, q):
        # Prefix {6}: σ1 = e7→f8; extend with 5 (c→e): σ3 = c4→e7.
        spec = ExtensionSpec(q, (6,), 5)
        assert spec.check((make_edge("e7", "f8", 1),), make_edge("c4", "e7", 3))

    def test_shared_vertex_mismatch_rejected(self, q):
        spec = ExtensionSpec(q, (6,), 5)
        # 5's dst must equal 6's src (query vertex e = e7), but e9 ≠ e7.
        assert not spec.check((make_edge("e7", "f8", 1),),
                              make_edge("c4", "e9", 3))

    def test_timestamp_must_strictly_increase(self, q):
        spec = ExtensionSpec(q, (6,), 5)
        prefix = (make_edge("e7", "f8", 3),)
        assert not spec.check(prefix, make_edge("c4", "e7", 3))
        assert not spec.check(prefix, make_edge("c4", "e7", 2))

    def test_duplicate_data_edge_rejected(self, q):
        # Artificial: same query uses edge 2 then 5 — craft a prefix reusing
        # the same data edge object.
        spec = ExtensionSpec(q, (6, 5), 4)
        sigma1 = make_edge("e7", "f8", 1)
        sigma3 = make_edge("c4", "e7", 3)
        assert not spec.check((sigma1, sigma3), sigma3)

    def test_injectivity_enforced(self, q):
        # 4 = d→c; if the candidate's d-vertex collides with the data vertex
        # already bound to f, injectivity fails.
        spec = ExtensionSpec(q, (6, 5), 4)
        sigma1 = make_edge("e7", "f8", 1)
        sigma3 = make_edge("c4", "e7", 3)
        collide = make_edge("f8", "c4", 4, label_of=lambda v: {"f8": "d",
                                                               "c4": "c"}[v])
        assert not spec.check((sigma1, sigma3), collide)

    def test_paper_insertions(self, q):
        """Fig. 7's expansion list content: σ4 and σ9 both extend {σ1, σ3}."""
        spec = ExtensionSpec(q, (6, 5), 4)
        prefix = (make_edge("e7", "f8", 1), make_edge("c4", "e7", 3))
        assert spec.check(prefix, make_edge("d5", "c4", 4))
        assert spec.check(prefix, make_edge("d6", "c4", 9))


class TestUnionSpec:
    def test_overlapping_slots_rejected(self, q):
        with pytest.raises(ValueError):
            UnionSpec(q, (6, 5), (5, 4))

    def test_compatible_union(self, q):
        # Q1 = {6,5,4} matched by σ1,σ3,σ4; Q2 = {3,1} matched by σ7,σ8.
        spec = UnionSpec(q, (6, 5, 4), (3, 1))
        a = (make_edge("e7", "f8", 1), make_edge("c4", "e7", 3),
             make_edge("d5", "c4", 4))
        b = (make_edge("d5", "b3", 7), make_edge("a1", "b3", 8))
        assert spec.check(a, b)

    def test_shared_vertex_consistency_across_sides(self, q):
        # d must be the same data vertex on both sides: σ4 = d5→c4 fixes
        # d ↦ d5; a Q2 match with d6→b3 must be rejected.
        spec = UnionSpec(q, (6, 5, 4), (3, 1))
        a = (make_edge("e7", "f8", 1), make_edge("c4", "e7", 3),
             make_edge("d5", "c4", 4))
        b = (make_edge("d6", "b3", 7), make_edge("a1", "b3", 8))
        assert not spec.check(a, b)

    def test_cross_timing_enforced(self, q):
        # 6 ≺ 3: a Q2 match whose 3-edge precedes σ1 must be rejected.
        spec = UnionSpec(q, (6, 5, 4), (3, 1))
        a = (make_edge("e7", "f8", 5), make_edge("c4", "e7", 6),
             make_edge("d5", "c4", 7))
        b = (make_edge("d5", "b3", 2), make_edge("a1", "b3", 8))
        assert not spec.check(a, b)

    def test_cross_timing_disabled_for_sjtree(self, q):
        spec = UnionSpec(q, (6, 5, 4), (3, 1), enforce_timing=False)
        a = (make_edge("e7", "f8", 5), make_edge("c4", "e7", 6),
             make_edge("d5", "c4", 7))
        b = (make_edge("d5", "b3", 2), make_edge("a1", "b3", 8))
        assert spec.check(a, b)

    def test_cross_injectivity(self, q):
        # Q3 = {2} = b→c; its c must be the prefix's c (c4), and its b must
        # not collide with any other bound vertex.
        spec = UnionSpec(q, (6, 5, 4, 3, 1), (2,))
        a = (make_edge("e7", "f8", 1), make_edge("c4", "e7", 3),
             make_edge("d5", "c4", 4), make_edge("d5", "b3", 7),
             make_edge("a1", "b3", 8))
        good = (make_edge("b3", "c4", 5),)
        assert spec.check(a, good)
        wrong_b = (make_edge("b9", "c4", 5),)   # b ↦ b9 vs b3 in prefix
        assert not spec.check(a, wrong_b)

    def test_duplicate_edge_across_sides_rejected(self, q):
        spec = UnionSpec(q, (6, 5), (2,))
        shared = make_edge("b3", "c4", 5)
        a = (make_edge("e7", "f8", 1), make_edge("c4", "e7", 3))
        # craft b-side reusing an a-side edge object → must fail
        assert not spec.check((a[0], shared), (shared,))


class TestJoinCandidates:
    def test_nested_loop_yields_compatible_pairs(self, q):
        spec = UnionSpec(q, (6, 5, 4), (3, 1))
        a1 = (make_edge("e7", "f8", 1), make_edge("c4", "e7", 3),
              make_edge("d5", "c4", 4))
        a2 = (make_edge("e7", "f8", 1), make_edge("c4", "e7", 3),
              make_edge("d6", "c4", 9))   # d ↦ d6
        b = (make_edge("d5", "b3", 7), make_edge("a1", "b3", 8))
        pairs = list(join_candidates(spec, [("h1", a1), ("h2", a2)],
                                     [("g1", b)]))
        assert len(pairs) == 1
        assert pairs[0][0][0] == "h1"
