"""Join-order selection: joint number (Definition 12) and permutations."""

import random

import pytest

from repro.core.decomposition import greedy_decomposition
from repro.core.join_order import (
    is_prefix_connected_order, jn_join_order, joint_number, random_join_order,
)

from ..conftest import fig5_query, path_query


@pytest.fixture
def q():
    return fig5_query()


@pytest.fixture
def decomposition(q):
    return greedy_decomposition(q)   # [(6,5,4), (3,1), (2,)]


class TestJointNumber:
    def test_common_vertices_counted(self, q):
        # Q1 = {6,5,4} has vertices {c,d,e,f}; Q3 = {2} has {b,c} → nv = 1.
        assert joint_number(q, (6, 5, 4), (2,)) == 1

    def test_timing_pairs_counted(self, q):
        # Q1={6,5,4} vs Q2={3,1}: shared vertex? Q1 vertices {c,d,e,f},
        # Q2 {a,b,d} → {d} (nv=1).  Timing pairs across: 6≺3, 6≺1 → nt=2.
        assert joint_number(q, (6, 5, 4), (3, 1)) == 3

    def test_symmetry(self, q):
        assert joint_number(q, (6, 5, 4), (3, 1)) == \
            joint_number(q, (3, 1), (6, 5, 4))

    def test_disjoint_unrelated_is_zero(self):
        q = path_query(3, timing="empty")
        assert joint_number(q, ("e0",), ("e2",)) == 0


class TestJNOrder:
    def test_order_is_prefix_connected(self, q, decomposition):
        order = jn_join_order(q, decomposition)
        assert is_prefix_connected_order(q, order)
        assert sorted(map(sorted, order)) == sorted(map(sorted, decomposition))

    def test_running_example_starts_with_best_pair(self, q, decomposition):
        # JN(Q1,Q2)=3 beats JN(Q1,Q3)=1+nt(4≺2? no; cross timing none)=1
        # and JN(Q2,Q3)=1 (share b) → order starts Q1, Q2.
        order = jn_join_order(q, decomposition)
        assert set(order[0]) == {6, 5, 4}
        assert set(order[1]) == {3, 1}

    def test_single_part_passthrough(self, q):
        assert jn_join_order(q, [(6, 5, 4)]) == [(6, 5, 4)]


class TestRandomOrder:
    def test_random_orders_are_prefix_connected(self, q, decomposition):
        for seed in range(15):
            order = random_join_order(q, decomposition, random.Random(seed))
            assert is_prefix_connected_order(q, order)

    def test_random_orders_vary(self, q, decomposition):
        orders = {tuple(map(tuple, random_join_order(
            q, decomposition, random.Random(seed)))) for seed in range(20)}
        assert len(orders) > 1


class TestPrefixConnectedPredicate:
    def test_rejects_disconnected_prefix(self, q):
        # {3,1} (vertices a,b,d) then {6,5,4} (c,d,e,f) — share d → fine;
        # but {2} first then {6,5,4}: {2}={b,c}, Q1 has c → connected too.
        # Build a genuinely disconnected order on a path query instead.
        pq = path_query(3, timing="empty")
        assert not is_prefix_connected_order(pq, [("e0",), ("e2",), ("e1",)])
        assert is_prefix_connected_order(pq, [("e0",), ("e1",), ("e2",)])

    def test_empty_order_rejected(self, q):
        assert not is_prefix_connected_order(q, [])
