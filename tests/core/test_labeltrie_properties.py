"""Property suite for the predicate-routing primitives.

The trie walk is the hot-path structure of PR 10: a session resolves the
candidate matcher set for an arriving label in O(label length), so the
trie must agree *exactly* with the brute-force definition ("every stored
pattern that is a prefix of the text") under arbitrary insert/remove
churn, and must prune nodes on removal so deregistration-heavy sessions
cannot leak.  The router on top adds per-position composition (src/edge/
dst atoms plus the loop flag), pinned against its own brute force.
"""

import pickle
import random
from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labeltrie import LabelTrie, PredicateRouter
from repro.core.query import prefix_text

#: Small alphabet so random patterns collide and share prefixes often —
#: shared-prefix paths are exactly what the walk must get right.
ALPHABET = "ab4"

patterns = st.text(alphabet=ALPHABET, min_size=1, max_size=6)
texts = st.text(alphabet=ALPHABET, min_size=0, max_size=10)


def brute_force_walk(stored, text):
    """The specification: tokens of every pattern that prefixes text."""
    return {token for pattern, tokens in stored.items()
            if text.startswith(pattern) for token in tokens}


class TestLabelTrieProperties:
    @given(st.lists(patterns, min_size=0, max_size=30), st.lists(
        texts, min_size=1, max_size=20))
    def test_walk_equals_brute_force(self, pats, probes):
        trie = LabelTrie()
        stored = defaultdict(set)
        for i, pattern in enumerate(pats):
            trie.insert(pattern, i)
            stored[pattern].add(i)
        for text in probes:
            assert set(trie.walk(text)) == brute_force_walk(stored, text)

    @given(st.lists(patterns, min_size=1, max_size=30),
           st.integers(0, 2**32 - 1))
    def test_churn_keeps_walk_exact_and_prunes(self, pats, seed):
        rng = random.Random(seed)
        trie = LabelTrie()
        stored = defaultdict(set)
        live = []
        for i, pattern in enumerate(pats):
            if live and rng.random() < 0.4:
                victim = rng.randrange(len(live))
                rpat, rtok = live.pop(victim)
                trie.remove(rpat, rtok)
                stored[rpat].discard(rtok)
                if not stored[rpat]:
                    del stored[rpat]
            trie.insert(pattern, i)
            stored[pattern].add(i)
            live.append((pattern, i))
            probe = rng.choice(pats) + rng.choice(["", "a", "4"])
            assert set(trie.walk(probe)) == brute_force_walk(stored, probe)
        assert len(trie) == len(live)
        for pattern, token in live:
            trie.remove(pattern, token)
        # Full removal prunes every node but the root: churn cannot leak.
        assert trie.node_count() == 1
        assert len(trie) == 0
        assert trie.walk("a" * 8) == []

    @given(st.lists(patterns, min_size=0, max_size=20))
    def test_pickle_round_trip(self, pats):
        trie = LabelTrie()
        for i, pattern in enumerate(pats):
            trie.insert(pattern, i)
        clone = pickle.loads(pickle.dumps(trie))
        assert len(clone) == len(trie)
        assert clone.node_count() == trie.node_count()
        for probe in set(pats) | {"", "a4ab"}:
            assert set(clone.walk(probe)) == set(trie.walk(probe))

    def test_insert_remove_contract(self):
        trie = LabelTrie()
        with pytest.raises(ValueError):
            trie.insert("", "t")
        trie.insert("44", "t")
        with pytest.raises(ValueError):
            trie.insert("44", "t")          # duplicate token
        with pytest.raises(KeyError):
            trie.remove("4", "t")           # pattern absent
        with pytest.raises(KeyError):
            trie.remove("44", "other")      # token absent
        trie.insert("448", "u")
        trie.remove("448", "u")
        # Removing the longer pattern prunes its suffix but keeps the
        # shared "44" path alive for the surviving token.
        assert set(trie.walk("4480")) == {"t"}


# ---------------------------------------------------------------------- #
# PredicateRouter: per-position composition against its own brute force.
# ---------------------------------------------------------------------- #

VALUES = ["a", "ab", "4", "44", "448", 4, 44, 448, "b4"]

atom = st.one_of(
    st.just(("any",)),
    st.tuples(st.just("eq"), st.sampled_from(VALUES)),
    st.tuples(st.just("pre"), patterns),
)
entries = st.lists(
    st.tuples(atom, atom, atom, st.booleans()), min_size=0, max_size=25)
arrivals = st.lists(
    st.tuples(st.sampled_from(VALUES), st.sampled_from(VALUES),
              st.sampled_from(VALUES), st.booleans()),
    min_size=1, max_size=25)


def atom_accepts(a, value):
    kind = a[0]
    if kind == "any":
        return True
    if kind == "eq":
        return a[1] == value
    text = prefix_text(value)
    return text is not None and text.startswith(a[1])


def brute_force_match(registered, src, edge, dst, is_loop):
    return {token for token, (atoms, loop, _) in registered.items()
            if loop == is_loop
            and all(atom_accepts(a, v)
                    for a, v in zip(atoms, (src, edge, dst)))}


def router_mirror(entry_list):
    router = PredicateRouter()
    registered = {}
    for i, (sa, ea, da, loop) in enumerate(entry_list):
        required = sum(1 for a in (sa, ea, da) if a[0] != "any")
        router.add(i, (sa, ea, da), loop)
        registered[i] = ((sa, ea, da), loop, required)
    return router, registered


class TestPredicateRouterProperties:
    @given(entries, arrivals)
    def test_match_equals_brute_force(self, entry_list, probe_list):
        router, registered = router_mirror(entry_list)
        for src, edge, dst, is_loop in probe_list:
            assert router.match(src, edge, dst, is_loop) == \
                brute_force_match(registered, src, edge, dst, is_loop)

    @given(entries, arrivals, st.integers(0, 2**32 - 1))
    @settings(max_examples=50)
    def test_churn_and_serialization(self, entry_list, probe_list, seed):
        rng = random.Random(seed)
        router, registered = router_mirror(entry_list)
        for token in list(registered):
            if rng.random() < 0.5:
                router.remove(token)
                del registered[token]
        clone = pickle.loads(pickle.dumps(router))
        for target in (router, clone):
            for src, edge, dst, is_loop in probe_list:
                assert target.match(src, edge, dst, is_loop) == \
                    brute_force_match(registered, src, edge, dst, is_loop)
        for token in list(registered):
            router.remove(token)
        # Full removal prunes every trie node (three bare roots remain).
        assert router.node_count() == 3
        assert len(router) == 0

    def test_duplicate_token_rejected(self):
        router = PredicateRouter()
        router.add("t", (("any",), ("eq", 1), ("any",)), False)
        with pytest.raises(ValueError):
            router.add("t", (("any",), ("any",), ("any",)), False)
        router.remove("t")
        with pytest.raises(KeyError):
            router.remove("t")
