"""Match objects and the Definition-4 verifier (the suite's oracle checks)."""

import pytest

from repro import Match, verify_match
from repro.core.matches import (
    build_vertex_mapping, edges_distinct, satisfies_timing,
)

from ..conftest import fig3_stream, fig5_query, make_edge


@pytest.fixture
def q():
    return fig5_query()


@pytest.fixture
def paper_match():
    """The paper's example match g at t=8: σ1,σ3,σ4,σ5,σ7,σ8 (Fig. 4a)."""
    s = {e.timestamp: e for e in fig3_stream()}
    return {
        6: s[1],   # e7→f8
        5: s[3],   # c4→e7
        4: s[4],   # d5→c4
        2: s[5],   # b3→c4
        3: s[7],   # d5→b3
        1: s[8],   # a1→b3
    }


class TestVertexMapping:
    def test_paper_match_maps_bijectively(self, q, paper_match):
        mapping = build_vertex_mapping(q, paper_match)
        assert mapping == {"a": "a1", "b": "b3", "c": "c4",
                           "d": "d5", "e": "e7", "f": "f8"}

    def test_conflicting_shared_vertex_rejected(self, q, paper_match):
        bad = dict(paper_match)
        bad[1] = make_edge("a2", "b10", 8)   # b maps to b10 vs b3 elsewhere
        assert build_vertex_mapping(q, bad) is None

    def test_injectivity_violation_rejected(self, q):
        # Both a and d would map to x1.
        partial = {1: make_edge("x1", "b3", 1), 3: make_edge("x1", "b3", 2)}
        assert build_vertex_mapping(q, partial) is None


class TestTimingCheck:
    def test_paper_match_satisfies_timing(self, q, paper_match):
        assert satisfies_timing(q, paper_match)

    def test_violated_order_detected(self, q, paper_match):
        # Swap timestamps so 3 (t=7) comes after 1 (t=8) is fine, but make
        # 6 arrive last: 6 ≺ everything must then fail.
        bad = dict(paper_match)
        bad[6] = make_edge("e7", "f8", 9.5)
        assert not satisfies_timing(q, bad)

    def test_equal_timestamps_do_not_satisfy_strict_order(self, q, paper_match):
        bad = dict(paper_match)
        bad[3] = make_edge("d5", "b3", 8)   # same t as edge matching 1
        assert not satisfies_timing(q, bad)

    def test_partial_assignments_checked_only_pairwise(self, q):
        assert satisfies_timing(q, {6: make_edge("e7", "f8", 5)})


class TestVerifyMatch:
    def test_paper_match_verifies(self, q, paper_match):
        assert verify_match(q, paper_match)

    def test_incomplete_rejected_unless_partial_allowed(self, q, paper_match):
        partial = {k: paper_match[k] for k in (6, 5, 4)}
        assert not verify_match(q, partial)
        assert verify_match(q, partial, require_complete=False)

    def test_duplicate_data_edge_rejected(self, q, paper_match):
        bad = dict(paper_match)
        bad[2] = bad[4]
        assert not edges_distinct(bad)
        assert not verify_match(q, bad)

    def test_wrong_label_rejected(self, q, paper_match):
        bad = dict(paper_match)
        bad[6] = make_edge("x9", "f8", 1)    # label x ≠ e
        assert not verify_match(q, bad)

    def test_unknown_edge_id_rejected(self, q, paper_match):
        bad = dict(paper_match)
        bad["nope"] = make_edge("e7", "f8", 0.5)
        assert not verify_match(q, bad, require_complete=False)


class TestMatchObject:
    def test_structural_equality_and_hash(self, q, paper_match):
        assert Match(paper_match) == Match(dict(paper_match))
        assert hash(Match(paper_match)) == hash(Match(dict(paper_match)))
        other = dict(paper_match)
        other[1] = make_edge("a2", "b3", 6)
        assert Match(paper_match) != Match(other)

    def test_accessors(self, q, paper_match):
        m = Match(paper_match)
        assert len(m) == 6
        assert m[6].endpoints == ("e7", "f8")
        assert 6 in m and "zz" not in m
        assert m.earliest_timestamp() == 1
        assert m.latest_timestamp() == 8
        assert m.uses_edge(paper_match[5])

    def test_project_and_merge_roundtrip(self, q, paper_match):
        m = Match(paper_match)
        left = m.project([6, 5, 4])
        right = m.project([1, 2, 3])
        assert left.merged_with(right) == m

    def test_merge_conflict_rejected(self, paper_match):
        m = Match(paper_match)
        other = Match({1: make_edge("a2", "b3", 6)})
        with pytest.raises(ValueError):
            m.merged_with(other)

    def test_vertex_mapping_raises_on_bad_match(self, q):
        m = Match({1: make_edge("x1", "b3", 1), 3: make_edge("x1", "b3", 2)})
        with pytest.raises(ValueError):
            m.vertex_mapping(q)
