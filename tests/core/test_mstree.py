"""MS-tree structure and stores (paper §IV, Figs. 10–11)."""

import pytest

from repro.core.mstree import (
    MS_NODE_CELLS, GlobalMSTreeStore, MSTree, MSTreeTCStore,
)

from ..conftest import make_edge


def sigma(ts, src="x", dst="y"):
    return make_edge(f"{src}{ts}", f"{dst}{ts}", ts)


class TestMSTree:
    def test_depth_validation(self):
        with pytest.raises(ValueError):
            MSTree(0)

    def test_insert_builds_paths(self):
        tree = MSTree(3)
        n1 = tree.insert(tree.root, "a")
        n2 = tree.insert(n1, "b")
        n3 = tree.insert(n2, "c")
        assert tree.path_payloads(n3) == ("a", "b", "c")
        assert tree.path_payloads(n1) == ("a",)
        assert [tree.count(d) for d in (1, 2, 3)] == [1, 1, 1]

    def test_insert_beyond_depth_rejected(self):
        tree = MSTree(1)
        leaf = tree.insert(tree.root, "a")
        with pytest.raises(ValueError):
            tree.insert(leaf, "b")

    def test_insert_under_removed_node_rejected(self):
        tree = MSTree(2)
        n1 = tree.insert(tree.root, "a")
        tree.remove_subtree(n1)
        with pytest.raises(ValueError):
            tree.insert(n1, "b")

    def test_level_list_linkage(self):
        tree = MSTree(2)
        nodes = [tree.insert(tree.root, i) for i in range(4)]
        assert {n.payload for n in tree.level_nodes(1)} == {0, 1, 2, 3}
        tree.remove_subtree(nodes[1])
        assert {n.payload for n in tree.level_nodes(1)} == {0, 2, 3}
        assert tree.count(1) == 3

    def test_remove_subtree_removes_descendants(self):
        """Paper example: deleting σ1 removes σ3, σ4, σ9 (Fig. 10)."""
        tree = MSTree(3)
        n1 = tree.insert(tree.root, "σ1")
        n2 = tree.insert(n1, "σ3")
        tree.insert(n2, "σ4")
        tree.insert(n2, "σ9")
        removed = tree.remove_subtree(n1)
        assert removed == 4
        assert tree.node_count == 0

    def test_remove_is_idempotent(self):
        tree = MSTree(1)
        node = tree.insert(tree.root, "a")
        assert tree.remove_subtree(node) == 1
        assert tree.remove_subtree(node) == 0

    def test_on_remove_callback_fires_per_node(self):
        removed = []
        tree = MSTree(2, on_remove=lambda n: removed.append(n.payload))
        n1 = tree.insert(tree.root, "a")
        tree.insert(n1, "b")
        tree.remove_subtree(n1)
        assert sorted(removed) == ["a", "b"]


class TestMSTreeTCStore:
    def test_fig10_shape(self):
        """Reproduce Fig. 10: the expansion list for {6,5,4} holds σ1 at
        level 1, σ1σ3 at level 2, and σ1σ3σ4 + σ1σ3σ9 sharing their prefix."""
        store = MSTreeTCStore(3)
        s1, s3, s4, s9 = sigma(1), sigma(3), sigma(4), sigma(9)
        n1 = store.insert(1, store.root, (), s1)
        n2 = store.insert(2, n1, (s1,), s3)
        store.insert(3, n2, (s1, s3), s4)
        store.insert(3, n2, (s1, s3), s9)
        assert store.tree.node_count == 4       # prefix compression
        flats = {flat for _, flat in store.read(3)}
        assert flats == {(s1, s3, s4), (s1, s3, s9)}
        assert [store.count(i) for i in (1, 2, 3)] == [1, 1, 2]

    def test_delete_edge_cascades(self):
        store = MSTreeTCStore(3)
        s1, s3, s4, s9 = sigma(1), sigma(3), sigma(4), sigma(9)
        n1 = store.insert(1, store.root, (), s1)
        n2 = store.insert(2, n1, (s1,), s3)
        store.insert(3, n2, (s1, s3), s4)
        store.insert(3, n2, (s1, s3), s9)
        assert store.delete_edge(s1) == 4
        assert store.tree.node_count == 0
        assert store.delete_edge(s1) == 0   # registry cleaned

    def test_delete_inner_edge_keeps_prefix(self):
        store = MSTreeTCStore(2)
        s1, s3 = sigma(1), sigma(3)
        n1 = store.insert(1, store.root, (), s1)
        store.insert(2, n1, (s1,), s3)
        assert store.delete_edge(s3) == 1
        assert [store.count(i) for i in (1, 2)] == [1, 0]

    def test_flat_cache_matches_backtracking(self):
        store = MSTreeTCStore(2)
        s1, s3 = sigma(1), sigma(3)
        n1 = store.insert(1, store.root, (), s1)
        n2 = store.insert(2, n1, (s1,), s3)
        assert store.flat(n2) == (s1, s3)
        assert store.flat(n2) is store.flat(n2)   # cached

    def test_space_cells_constant_per_node(self):
        store = MSTreeTCStore(2)
        s1 = sigma(1)
        n1 = store.insert(1, store.root, (), s1)
        store.insert(2, n1, (s1,), sigma(3))
        assert store.space_cells() == 2 * MS_NODE_CELLS


class TestGlobalMSTreeStore:
    def _setup(self):
        """Two subqueries of length 2 and 1; one match each."""
        q1 = MSTreeTCStore(2)
        q2 = MSTreeTCStore(1)
        store = GlobalMSTreeStore([q1, q2])
        s1, s3, s5 = sigma(1), sigma(3), sigma(5)
        n1 = q1.insert(1, q1.root, (), s1)
        leaf1 = q1.insert(2, n1, (s1,), s3)
        leaf2 = q2.insert(1, q2.root, (), s5)
        return store, q1, q2, leaf1, leaf2, (s1, s3, s5)

    def test_needs_two_subqueries(self):
        with pytest.raises(ValueError):
            GlobalMSTreeStore([MSTreeTCStore(1)])

    def test_level1_is_virtual(self):
        store, q1, _, leaf1, _, (s1, s3, _) = self._setup()
        entries = store.read(1)
        assert entries == [(leaf1, (s1, s3))]
        assert store.count(1) == 1

    def test_insert_level2_flattens(self):
        store, _, _, leaf1, leaf2, (s1, s3, s5) = self._setup()
        node = store.insert(2, leaf1, (s1, s3), leaf2, (s5,))
        assert store.read(2) == [(node, (s1, s3, s5))]
        # One anchor + one depth-2 node.
        assert store.tree.node_count == 2

    def test_anchor_reused_across_inserts(self):
        store, _, q2, leaf1, leaf2, (s1, s3, s5) = self._setup()
        s6 = sigma(6)
        leaf3 = q2.insert(1, q2.root, (), s6)
        store.insert(2, leaf1, (s1, s3), leaf2, (s5,))
        store.insert(2, leaf1, (s1, s3), leaf3, (s6,))
        assert store.count(2) == 2
        assert store.tree.count(1) == 1   # single anchor

    def test_subquery_leaf_death_cascades_into_global(self):
        """Algorithm 2 line 7: expired Qⁱ matches kill the L₀ entries built
        on them — here via the dependency links."""
        store, q1, _, leaf1, leaf2, (s1, s3, s5) = self._setup()
        store.insert(2, leaf1, (s1, s3), leaf2, (s5,))
        q1.delete_edge(s1)            # kills the Q¹ match
        assert store.count(2) == 0
        assert store.tree.node_count == 0

    def test_second_subquery_death_cascades_too(self):
        store, _, q2, leaf1, leaf2, (s1, s3, s5) = self._setup()
        store.insert(2, leaf1, (s1, s3), leaf2, (s5,))
        q2.delete_edge(s5)
        assert store.count(2) == 0
        # The anchor survives (its Q¹ match is alive) but holds no children.
        assert store.tree.count(1) == 1

    def test_global_delete_edge_is_noop(self):
        store, *_ , edges = self._setup()
        assert store.delete_edge(edges[0]) == 0

    def test_insert_level_bounds(self):
        store, _, _, leaf1, leaf2, (s1, s3, s5) = self._setup()
        with pytest.raises(ValueError):
            store.insert(1, leaf1, (s1, s3), leaf2, (s5,))
        with pytest.raises(ValueError):
            store.insert(3, leaf1, (s1, s3), leaf2, (s5,))
