"""Fidelity tests for the paper's worked examples (Figs. 7, 9, 10, 11).

These assert the *internal* state of the engine — expansion-list item
contents — against the values the paper derives by hand for the running
example, not just the reported matches.
"""

import pytest

from repro import TimingMatcher

from ..conftest import fig3_stream, fig5_query


@pytest.fixture
def engine_at(request):
    def build(until_t):
        matcher = TimingMatcher(fig5_query(), window=9.0)
        for edge in fig3_stream():
            if edge.timestamp > until_t:
                break
            matcher.push(edge)
        return matcher
    return build


class TestFig7And9ExpansionLists:
    def test_profile_at_t9(self, engine_at):
        """At t=9 the paper's structures hold (Figs. 7, 9, 11):

        * L1 (Q¹ = {6,5,4}): Ω({6}) = {σ1}; Ω({6,5}) = {σ1σ3};
          Ω({6,5,4}) = {σ1σ3σ4, σ1σ3σ9};
        * L2 (Q² = {3,1}): Ω({3}) = {σ7}; Ω({3,1}) = {σ7σ8};
        * L3 (Q³ = {2}): Ω({2}) = {σ5};
        * L0: Ω(Q¹∪Q²) = 1 entry (the σ9 variant fails on vertex d);
          Ω(Q¹∪Q²∪Q³) = the single complete match.
        """
        matcher = engine_at(9)
        assert matcher.store_profile() == {
            "L1^1": 1, "L1^2": 1, "L1^3": 2,
            "L2^1": 1, "L2^2": 1,
            "L3^1": 1,
            "L0^2": 1, "L0^3": 1,
        }

    def test_fig7_sequential_forms_at_t9(self, engine_at):
        matcher = engine_at(9)
        store = matcher._tc_stores[0]          # Q¹ = (6, 5, 4)
        level3 = {tuple(e.timestamp for e in flat)
                  for _, flat in store.read(3)}
        assert level3 == {(1, 3, 4), (1, 3, 9)}   # σ1σ3σ4 and σ1σ3σ9
        level2 = {tuple(e.timestamp for e in flat)
                  for _, flat in store.read(2)}
        assert level2 == {(1, 3)}

    def test_fig10_mstree_shape_at_t9(self, engine_at):
        """Fig. 10: four nodes — σ1 → σ3 → {σ4, σ9} share their prefix."""
        matcher = engine_at(9)
        store = matcher._tc_stores[0]
        assert store.tree.node_count == 4
        assert [store.count(level) for level in (1, 2, 3)] == [1, 1, 2]

    def test_sigma2_never_stored(self, engine_at):
        """σ2 (c4→e9 at t=2) matches query edge 5, but Ω({6}) holds no
        compatible prefix (e must map to e9's... σ1 binds e↦e7): the paper's
        example join Ω(Preq(6)) ⋈ σ2 = ∅ — nothing stored."""
        before = engine_at(1).store_profile()
        after = engine_at(2).store_profile()
        assert before == after

    def test_expiry_cascade_at_t10(self, engine_at):
        """σ1 expires at t=10 (Fig. 4c): the σ1-rooted paths die in M1,
        which cascades through the pointer links into M0 (Fig. 11)."""
        matcher = engine_at(10)
        profile = matcher.store_profile()
        assert profile["L1^1"] == 0
        assert profile["L1^2"] == 0
        assert profile["L1^3"] == 0
        assert profile["L0^2"] == 0
        assert profile["L0^3"] == 0
        # Q² and Q³ stores are untouched by σ1 (σ10 = d5→e7 matches 5 but
        # joins emptily; σ7, σ8, σ5 still live).
        assert profile["L2^2"] == 1
        assert profile["L3^1"] == 1
