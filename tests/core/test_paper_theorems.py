"""Executable checks of the paper's theorems (1, 2, 3) on real runs."""

import random

import pytest

from repro import QueryGraph, SnapshotGraph, TimingMatcher
from repro.isomorphism import StaticMatcher

from ..conftest import fig3_stream, fig5_query, make_edge
from .test_engine_properties import build_random_query, build_random_stream


class TestTheorem1Reduction:
    """Theorem 1 reduces static subgraph isomorphism to our problem: assign
    arbitrary increasing timestamps to G's edges, use an empty timing order
    and a window spanning everything — then matches exist iff g ⊑ G."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_reduction_agrees_with_static_solver(self, seed):
        rng = random.Random(seed)
        pattern = build_random_query(rng, rng.randint(2, 4))
        if not pattern.is_weakly_connected():
            return
        assert pattern.timing.is_empty() or True
        # Strip the random timing order: the reduction uses ≺ = ∅.
        stripped = QueryGraph()
        for vertex in pattern.vertices():
            stripped.add_vertex(vertex.vertex_id, vertex.label)
        for edge in pattern.edges():
            stripped.add_edge(edge.edge_id, edge.src, edge.dst, edge.label)

        data_edges = build_random_stream(rng, 30, 5)
        snapshot = SnapshotGraph()
        for edge in data_edges:
            snapshot.add_edge(edge)
        statically_exists = bool(
            StaticMatcher().find_all(stripped, snapshot,
                                     enforce_timing=False))

        window = data_edges[-1].timestamp - data_edges[0].timestamp + 1
        engine = TimingMatcher(stripped, window)
        found = 0
        for edge in data_edges:
            found += len(engine.push(edge))
        assert (found > 0) == statically_exists


class TestTheorem2SingleItemUpdate:
    """An arrival matching the i-th sequence edge updates only item Lⁱ (and,
    transitively, global items when it completes a subquery)."""

    def test_sigma3_touches_only_l1_level2(self):
        matcher = TimingMatcher(fig5_query(), window=9.0)
        stream = fig3_stream()
        matcher.push(stream[0])           # σ1 → L1¹
        matcher.push(stream[1])           # σ2 → nothing (join empty)
        before = matcher.store_profile()
        matcher.push(stream[2])           # σ3 matches ε5 (position 2 in Q¹)
        after = matcher.store_profile()
        changed = {item for item in after if after[item] != before[item]}
        assert changed == {"L1^2"}

    def test_first_position_arrival_touches_only_level1(self):
        matcher = TimingMatcher(fig5_query(), window=9.0)
        before = matcher.store_profile()
        matcher.push(make_edge("e7", "f8", 1))   # σ1 matches ε6 (pos 1, Q¹)
        after = matcher.store_profile()
        changed = {item for item in after if after[item] != before[item]}
        assert changed == {"L1^1"}


class TestTheorem3FilterCost:
    """Determining discardability costs one join against Lⁱ⁻¹ per matched
    non-first position — visible in the join-operation counter."""

    def test_join_counter_increments_once_per_probe(self):
        matcher = TimingMatcher(fig5_query(), window=9.0)
        matcher.push(make_edge("e7", "f8", 1))   # pos 1: no join
        assert matcher.stats.join_operations == 0
        matcher.push(make_edge("c4", "e9", 2))   # σ2 matches ε5: one join
        assert matcher.stats.join_operations == 1
        matcher.push(make_edge("c4", "e7", 3))   # σ3 matches ε5: one join
        assert matcher.stats.join_operations == 2
