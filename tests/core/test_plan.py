"""Query planning / explain()."""

import pytest

from repro.core.plan import explain

from ..conftest import fig5_query, path_query


class TestExplain:
    def test_running_example_plan(self):
        plan = explain(fig5_query())
        assert plan.k == 3
        assert not plan.is_tc_query
        assert plan.decomposition == [(6, 5, 4), (3, 1), (2,)]
        assert plan.tcsub_count == 10
        assert plan.expected_joins_per_edge == pytest.approx(8 / 6)

    def test_tc_query_plan(self):
        plan = explain(path_query(3, timing="chain"))
        assert plan.is_tc_query
        assert plan.k == 1
        assert plan.joint_numbers() == []

    def test_render_contains_key_sections(self):
        text = explain(fig5_query()).render()
        assert "decomposition (k=3)" in text
        assert "join order" in text
        assert "Theorem 7" in text
        assert "L1^3" in text and "L0^3" in text

    def test_expansion_list_items_layout(self):
        plan = explain(fig5_query())
        items = plan.expansion_list_items()
        # 3 + 2 + 1 subquery items plus L0 levels 2..3.
        assert len(items) == 6 + 2
        assert items[0].startswith("L1^1")
        assert items[-1].startswith("L0^3")

    def test_joint_numbers_along_order(self):
        plan = explain(fig5_query())
        jns = dict(plan.joint_numbers())
        assert jns[2] == 3    # JN(Q1, Q2) from the paper's example
        assert 3 in jns

    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            explain(fig5_query(), decomposition_strategy="bogus")
        with pytest.raises(ValueError):
            explain(fig5_query(), join_order_strategy="bogus")

    def test_random_strategies_produce_valid_plans(self):
        import random
        plan = explain(fig5_query(), decomposition_strategy="random",
                       join_order_strategy="random", rng=random.Random(5))
        assert plan.k >= 3
        assert plan.expected_joins_per_edge >= explain(
            fig5_query()).expected_joins_per_edge
