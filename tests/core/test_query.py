"""QueryGraph construction, label matching (incl. wildcards), structure."""

import pytest

from repro import ANY, QueryGraph, StreamEdge
from repro.core.query import labels_compatible

from ..conftest import fig5_query, make_edge


class TestLabelsCompatible:
    def test_plain_equality(self):
        assert labels_compatible("http", "http")
        assert not labels_compatible("http", "tcp")

    def test_any_matches_everything(self):
        assert labels_compatible(ANY, "anything")
        assert labels_compatible(ANY, None)
        assert labels_compatible(ANY, (1, 2, 3))

    def test_tuple_positional_wildcards(self):
        assert labels_compatible((ANY, 80, "tcp"), (51234, 80, "tcp"))
        assert not labels_compatible((ANY, 80, "tcp"), (51234, 443, "tcp"))

    def test_tuple_arity_must_match(self):
        assert not labels_compatible((ANY, 80), (1, 80, "tcp"))
        assert not labels_compatible((ANY, 80), "not a tuple")

    def test_nested_tuples(self):
        assert labels_compatible(((ANY,), "x"), ((5,), "x"))

    def test_any_is_singleton(self):
        from repro.core.query import _Wildcard
        assert _Wildcard() is ANY
        assert repr(ANY) == "ANY"


class TestConstruction:
    def test_duplicate_vertex_rejected(self):
        q = QueryGraph()
        q.add_vertex("a", "A")
        with pytest.raises(ValueError):
            q.add_vertex("a", "B")

    def test_duplicate_edge_rejected(self):
        q = QueryGraph()
        q.add_vertex("a", "A")
        q.add_vertex("b", "B")
        q.add_edge("e", "a", "b")
        with pytest.raises(ValueError):
            q.add_edge("e", "b", "a")

    def test_edge_needs_known_vertices(self):
        q = QueryGraph()
        q.add_vertex("a", "A")
        with pytest.raises(KeyError):
            q.add_edge("e", "a", "zz")

    def test_validate_rejects_empty_and_disconnected(self):
        q = QueryGraph()
        with pytest.raises(ValueError):
            q.validate()
        for v in "abcd":
            q.add_vertex(v, v)
        q.add_edge("e1", "a", "b")
        q.add_edge("e2", "c", "d")
        with pytest.raises(ValueError):
            q.validate()

    def test_timing_chain_helper(self):
        q = fig5_query()
        assert q.timing.precedes(6, 1)   # via 6 ≺ 3 ≺ 1
        assert q.timing.precedes(6, 4)
        assert not q.timing.comparable(1, 4)


class TestEdgeMatching:
    def test_matching_respects_vertex_labels(self):
        q = fig5_query()
        assert q.edge_matches(6, make_edge("e7", "f8", 1.0))
        assert not q.edge_matches(6, make_edge("f8", "e7", 1.0))

    def test_matching_edge_ids_multi(self):
        q = QueryGraph()
        q.add_vertex("x", "A")
        q.add_vertex("y", "B")
        q.add_vertex("z", "B")
        q.add_edge("e1", "x", "y")
        q.add_edge("e2", "x", "z")
        e = StreamEdge("d1", "d2", src_label="A", dst_label="B", timestamp=1)
        assert set(q.matching_edge_ids(e)) == {"e1", "e2"}

    def test_edge_label_wildcard(self):
        q = QueryGraph()
        q.add_vertex("v", "IP")
        q.add_vertex("w", "IP")
        q.add_edge("e", "v", "w", label=(ANY, 80, "tcp"))
        good = StreamEdge("h1", "h2", src_label="IP", dst_label="IP",
                          timestamp=1, label=(55555, 80, "tcp"))
        bad = StreamEdge("h1", "h2", src_label="IP", dst_label="IP",
                         timestamp=2, label=(55555, 22, "tcp"))
        assert q.edge_matches("e", good)
        assert not q.edge_matches("e", bad)

    def test_distinct_term_labels(self):
        q = fig5_query()
        # All vertex labels distinct → every edge a distinct term label.
        assert q.distinct_term_labels() == 6


class TestStructure:
    def test_edges_adjacent(self):
        q = fig5_query()
        assert q.edges_adjacent(1, 2)       # share b
        assert q.edges_adjacent(5, 6)       # share e
        assert not q.edges_adjacent(1, 6)

    def test_weak_connectivity_of_subqueries(self):
        q = fig5_query()
        assert q.is_weakly_connected()
        assert q.is_weakly_connected([6, 5, 4])
        assert not q.is_weakly_connected([6, 1])   # Preq(1) is disconnected
        assert q.is_weakly_connected([])

    def test_diameter(self):
        q = fig5_query()
        # f–e–c–b–a is the longest shortest path (length 4).
        assert q.diameter() == 4

    def test_preq(self):
        q = fig5_query()
        assert q.preq(1) == {6, 3, 1}
        assert q.preq(4) == {6, 5, 4}
        assert q.preq(2) == {2}

    def test_subquery_restricts_structure_and_timing(self):
        q = fig5_query()
        sub = q.subquery([6, 5, 4])
        assert sub.num_edges == 3
        assert sub.num_vertices == 4            # c, d, e, f
        assert sub.timing.precedes(6, 4)        # transitive pair kept
        assert sub.is_weakly_connected()

    def test_repr(self):
        assert "6 edges" in repr(fig5_query())
