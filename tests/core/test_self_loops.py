"""Self-loop regression tests: loop query edges ↔ loop data edges only.

A self-loop query edge must never match a non-loop data edge (the two
endpoints map the same query vertex to two data vertices) and a non-loop
query edge must never match a self-loop data edge (two query vertices would
collapse onto one data vertex, breaking injectivity).  This was a real bug:
level-1 expansion-list insertion has no join to catch it, so the per-edge
compatibility predicate must.
"""

import random

import pytest

from repro import QueryGraph, StreamEdge, TimingMatcher
from repro.baselines.incmat import IncMatMatcher
from repro.baselines.naive import NaiveSnapshotMatcher
from repro.baselines.sjtree import SJTreeMatcher


def loop_edge(v, ts, label="A"):
    return StreamEdge(v, v, src_label=label, dst_label=label, timestamp=ts)


def plain_edge(u, v, ts, lu="A", lv="A"):
    return StreamEdge(u, v, src_label=lu, dst_label=lv, timestamp=ts)


@pytest.fixture
def loop_query():
    q = QueryGraph()
    q.add_vertex("u", "A")
    q.add_vertex("v", "B")
    q.add_edge("loop", "u", "u")
    q.add_edge("out", "u", "v")
    q.add_timing_constraint("loop", "out")
    return q


class TestEdgeMatches:
    def test_loop_query_edge_rejects_plain_data_edge(self, loop_query):
        assert not loop_query.edge_matches("loop", plain_edge("x", "y", 1))
        assert loop_query.edge_matches("loop", loop_edge("x", 1))

    def test_plain_query_edge_rejects_loop_data_edge(self, loop_query):
        assert not loop_query.edge_matches(
            "out", StreamEdge("x", "x", src_label="A", dst_label="B",
                              timestamp=1))


class TestEndToEnd:
    def test_single_loop_edge_query(self):
        q = QueryGraph()
        q.add_vertex("u", "A")
        q.add_edge("loop", "u", "u")
        m = TimingMatcher(q, window=10.0)
        assert m.push(plain_edge("x", "y", 1.0)) == []
        got = m.push(loop_edge("x", 2.0))
        assert len(got) == 1

    def test_loop_query_against_mixed_stream_matches_oracle(self, loop_query):
        rng = random.Random(3)
        engines = [TimingMatcher(loop_query, 5.0),
                   TimingMatcher(loop_query, 5.0, use_mstree=False),
                   SJTreeMatcher(loop_query, 5.0),
                   IncMatMatcher(loop_query, 5.0)]
        oracle = NaiveSnapshotMatcher(loop_query, 5.0)
        t = 0.0
        labels = "AB"
        for _ in range(150):
            t += rng.random() * 0.3 + 0.01
            u = f"d{rng.randrange(5)}"
            if rng.random() < 0.3:
                edge = StreamEdge(u, u, src_label=labels[int(u[1:]) % 2],
                                  dst_label=labels[int(u[1:]) % 2],
                                  timestamp=t)
            else:
                v = f"d{rng.randrange(5)}"
                while v == u:
                    v = f"d{rng.randrange(5)}"
                edge = StreamEdge(u, v, src_label=labels[int(u[1:]) % 2],
                                  dst_label=labels[int(v[1:]) % 2],
                                  timestamp=t)
            expected = set(oracle.push(edge))
            for engine in engines:
                assert set(engine.push(edge)) == expected
