"""Property-based validation of the compiled join specs against the oracle.

The compiled :class:`ExtensionSpec` / :class:`UnionSpec` checks are the
engine's hot path; here they are cross-checked against the slow-but-obvious
semantic verifier (:func:`repro.core.matches.verify_match`) on random
queries and random candidate matches.  Any divergence between "compiled
positional constraints" and "build the vertex map from scratch" shows up
here first.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.join import ExtensionSpec, UnionSpec
from repro.core.matches import verify_match
from repro.graph.edge import StreamEdge

from .test_engine_properties import build_random_query


def random_edge_for(rng: random.Random, query, eid, serial: int,
                    vertex_pool) -> StreamEdge:
    """A data edge label-compatible with query edge ``eid``."""
    qedge = query.edge(eid)
    src_label = query.vertex_label(qedge.src)
    dst_label = query.vertex_label(qedge.dst)
    if qedge.src == qedge.dst:
        src = dst = rng.choice(vertex_pool[src_label])
    else:
        src = rng.choice(vertex_pool[src_label])
        dst = rng.choice(vertex_pool[dst_label])
    return StreamEdge(src, dst, src_label=src_label, dst_label=dst_label,
                      timestamp=float(serial))


def vertex_pool_for(rng: random.Random):
    return {label: [f"{label.lower()}{i}" for i in range(3)]
            for label in "AB"}


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100_000),
       n_edges=st.integers(min_value=2, max_value=4))
def test_extension_spec_agrees_with_verifier(seed, n_edges):
    """ExtensionSpec over a chain-ordered query prefix ≡ verify_match on the
    assembled partial assignment."""
    rng = random.Random(seed)
    query = build_random_query(rng, n_edges)
    eids = query.edge_ids()
    # Impose a full chain so any prefix is a valid timing sequence; use the
    # query's edges in insertion order and skip cases where the random
    # pre-existing order conflicts with the chain.
    chain_query = query
    order = list(eids)
    for before, after in zip(order, order[1:]):
        try:
            chain_query.add_timing_constraint(before, after)
        except Exception:
            return  # conflicting random order — skip this case

    pool = vertex_pool_for(rng)
    prefix_len = rng.randint(1, n_edges - 1)
    prefix_eids = order[:prefix_len]
    new_eid = order[prefix_len]

    prefix_edges = tuple(
        random_edge_for(rng, chain_query, eid, serial, pool)
        for serial, eid in enumerate(prefix_eids, start=1))
    new_edge = random_edge_for(rng, chain_query, new_eid,
                               rng.randint(0, prefix_len + 3), pool)

    # The stored prefix must itself be valid for the comparison to be
    # meaningful (the engine only ever holds valid prefixes).
    prefix_assignment = dict(zip(prefix_eids, prefix_edges))
    if not verify_match(chain_query, prefix_assignment,
                        require_complete=False):
        return

    spec = ExtensionSpec(chain_query, prefix_eids, new_eid)
    compiled = spec.check(prefix_edges, new_edge)
    assignment = dict(prefix_assignment)
    assignment[new_eid] = new_edge
    semantic = verify_match(chain_query, assignment, require_complete=False)
    assert compiled == semantic, (prefix_edges, new_edge)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_union_spec_agrees_with_verifier(seed):
    """UnionSpec over a random 2+2 split ≡ verify_match on the union,
    given both sides are individually valid."""
    rng = random.Random(seed)
    query = build_random_query(rng, 4)
    eids = query.edge_ids()
    rng.shuffle(eids)
    side_a, side_b = eids[:2], eids[2:]

    pool = vertex_pool_for(rng)
    edges_a = tuple(random_edge_for(rng, query, eid, rng.randint(1, 10), pool)
                    for eid in side_a)
    edges_b = tuple(random_edge_for(rng, query, eid, rng.randint(1, 10), pool)
                    for eid in side_b)
    a_assignment = dict(zip(side_a, edges_a))
    b_assignment = dict(zip(side_b, edges_b))
    if not verify_match(query, a_assignment, require_complete=False):
        return
    if not verify_match(query, b_assignment, require_complete=False):
        return

    spec = UnionSpec(query, side_a, side_b)
    compiled = spec.check(edges_a, edges_b)
    union = dict(a_assignment)
    union.update(b_assignment)
    semantic = verify_match(query, union, require_complete=False)
    assert compiled == semantic, (side_a, side_b, edges_a, edges_b)
