"""Property-based store equivalence: MS-tree ≡ independent, op by op.

Drives both storage backends through identical random operation sequences
(level inserts forming valid prefix extensions, interleaved with edge
deletions) and asserts their observable state — per-level flat-tuple sets —
never diverges.  This isolates the storage layer from the engine, so a
divergence here pins the bug precisely.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.mstree import GlobalMSTreeStore, MSTreeTCStore
from repro.core.stores import GlobalIndependentStore, IndependentTCStore
from repro.graph.edge import StreamEdge


def make_edge(serial: int) -> StreamEdge:
    return StreamEdge(f"u{serial}", f"v{serial}", src_label="A",
                      dst_label="B", timestamp=float(serial))


def level_sets(store, length):
    return [frozenset(flat for _, flat in store.read(level))
            for level in range(1, length + 1)]


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       length=st.integers(min_value=1, max_value=4),
       n_ops=st.integers(min_value=5, max_value=60))
def test_tc_stores_equivalent_under_random_ops(seed, length, n_ops):
    rng = random.Random(seed)
    ms = MSTreeTCStore(length)
    ind = IndependentTCStore(length)
    # Parallel handle maps: ms handle ↔ ind handle per stored entry.
    entries: List[List[Tuple[object, object, Tuple[StreamEdge, ...]]]] = [
        [] for _ in range(length)]
    live_edges: List[StreamEdge] = []
    serial = 0

    for _ in range(n_ops):
        action = rng.random()
        if action < 0.7 or not live_edges:
            # Insert: pick a level; level 1 is unconditional, deeper levels
            # extend a random existing parent entry.
            level = rng.randint(1, length)
            serial += 1
            edge = make_edge(serial)
            if level == 1:
                hm = ms.insert(1, ms.root, (), edge)
                hi = ind.insert(1, ind.root, (), edge)
                entries[0].append((hm, hi, (edge,)))
                live_edges.append(edge)
            else:
                parents = entries[level - 2]
                if not parents:
                    continue
                hm_p, hi_p, flat = parents[rng.randrange(len(parents))]
                if not all(e in live_edges for e in flat):
                    continue
                hm = ms.insert(level, hm_p, flat, edge)
                hi = ind.insert(level, hi_p, flat, edge)
                entries[level - 1].append((hm, hi, flat + (edge,)))
                live_edges.append(edge)
        else:
            victim = live_edges.pop(rng.randrange(len(live_edges)))
            ms.delete_edge(victim)
            ind.delete_edge(victim)
            for level_entries in entries:
                level_entries[:] = [
                    (hm, hi, flat) for hm, hi, flat in level_entries
                    if victim not in flat]
        assert level_sets(ms, length) == level_sets(ind, length)
        assert [ms.count(l) for l in range(1, length + 1)] == \
            [ind.count(l) for l in range(1, length + 1)]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_global_stores_equivalent_under_random_ops(seed):
    """Two subqueries of lengths 1 and 2; random complete-match inserts into
    the global level-2 list interleaved with deletions."""
    rng = random.Random(seed)
    ms_subs = [MSTreeTCStore(1), MSTreeTCStore(2)]
    ind_subs = [IndependentTCStore(1), IndependentTCStore(2)]
    ms_global = GlobalMSTreeStore(ms_subs)
    ind_global = GlobalIndependentStore(ind_subs)

    serial = 0
    q1_matches: List[Tuple[object, object, Tuple[StreamEdge, ...]]] = []
    q2_matches: List[Tuple[object, object, Tuple[StreamEdge, ...]]] = []
    live: List[StreamEdge] = []

    def new_edge():
        nonlocal serial
        serial += 1
        edge = make_edge(serial)
        live.append(edge)
        return edge

    for _ in range(40):
        roll = rng.random()
        if roll < 0.3:
            edge = new_edge()
            hm = ms_subs[0].insert(1, ms_subs[0].root, (), edge)
            hi = ind_subs[0].insert(1, ind_subs[0].root, (), edge)
            q1_matches.append((hm, hi, (edge,)))
        elif roll < 0.6:
            first, second = new_edge(), new_edge()
            hm1 = ms_subs[1].insert(1, ms_subs[1].root, (), first)
            hi1 = ind_subs[1].insert(1, ind_subs[1].root, (), first)
            hm2 = ms_subs[1].insert(2, hm1, (first,), second)
            hi2 = ind_subs[1].insert(2, hi1, (first,), second)
            q2_matches.append((hm2, hi2, (first, second)))
        elif roll < 0.85 and q1_matches and q2_matches:
            hm1, hi1, flat1 = q1_matches[rng.randrange(len(q1_matches))]
            hm2, hi2, flat2 = q2_matches[rng.randrange(len(q2_matches))]
            if all(e in live for e in flat1 + flat2):
                ms_global.insert(2, hm1, flat1, hm2, flat2)
                ind_global.insert(2, hi1, flat1, hi2, flat2)
        elif live:
            victim = live.pop(rng.randrange(len(live)))
            for store in ms_subs:
                store.delete_edge(victim)
            for store in ind_subs:
                store.delete_edge(victim)
            ind_global.delete_edge(victim)   # MS cascade is automatic
            q1_matches[:] = [(a, b, f) for a, b, f in q1_matches
                             if victim not in f]
            q2_matches[:] = [(a, b, f) for a, b, f in q2_matches
                             if victim not in f]
        got_ms = frozenset(flat for _, flat in ms_global.read(2))
        got_ind = frozenset(flat for _, flat in ind_global.read(2))
        assert got_ms == got_ind
