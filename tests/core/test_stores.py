"""Independent (Timing-IND) stores: same behaviour, different cost profile."""

import pytest

from repro.core.mstree import MSTreeTCStore
from repro.core.stores import (
    IND_ENTRY_OVERHEAD, GlobalIndependentStore, IndependentTCStore,
)

from ..conftest import make_edge


def sigma(ts):
    return make_edge(f"x{ts}", f"y{ts}", ts)


class TestIndependentTCStore:
    def test_insert_and_read(self):
        store = IndependentTCStore(2)
        s1, s3 = sigma(1), sigma(3)
        h1 = store.insert(1, store.root, (), s1)
        store.insert(2, h1, (s1,), s3)
        assert [flat for _, flat in store.read(1)] == [(s1,)]
        assert [flat for _, flat in store.read(2)] == [(s1, s3)]
        assert store.entry_count() == 2

    def test_flat_lookup(self):
        store = IndependentTCStore(1)
        s1 = sigma(1)
        handle = store.insert(1, store.root, (), s1)
        assert store.flat(handle) == (s1,)

    def test_delete_edge_removes_all_containing_tuples(self):
        store = IndependentTCStore(2)
        s1, s3, s4 = sigma(1), sigma(3), sigma(4)
        h1 = store.insert(1, store.root, (), s1)
        store.insert(2, h1, (s1,), s3)
        h2 = store.insert(1, store.root, (), s4)
        assert store.delete_edge(s1) == 2
        assert store.count(1) == 1
        assert store.count(2) == 0
        assert store.flat(h2) == (s4,)

    def test_delete_cleans_registry_of_other_edges(self):
        store = IndependentTCStore(2)
        s1, s3 = sigma(1), sigma(3)
        h1 = store.insert(1, store.root, (), s1)
        store.insert(2, h1, (s1,), s3)
        store.delete_edge(s1)
        # s3's registry entry must be gone too: deleting s3 removes nothing.
        assert store.delete_edge(s3) == 0

    def test_space_cells_grow_with_tuple_length(self):
        """The Timing vs Timing-IND space gap: an i-length entry costs
        i + overhead cells, against a constant per MS-tree node."""
        store = IndependentTCStore(3)
        s1, s3, s4 = sigma(1), sigma(3), sigma(4)
        h1 = store.insert(1, store.root, (), s1)
        h2 = store.insert(2, h1, (s1,), s3)
        store.insert(3, h2, (s1, s3), s4)
        assert store.space_cells() == (1 + 2 + 3) + 3 * IND_ENTRY_OVERHEAD

    def test_ind_costs_more_space_than_mstree_on_shared_prefixes(self):
        ind = IndependentTCStore(3)
        ms = MSTreeTCStore(3)
        s1, s3 = sigma(1), sigma(3)
        extensions = [sigma(4 + i) for i in range(10)]
        hi = ind.insert(1, ind.root, (), s1)
        hm = ms.insert(1, ms.root, (), s1)
        hi2 = ind.insert(2, hi, (s1,), s3)
        hm2 = ms.insert(2, hm, (s1,), s3)
        for ext in extensions:
            ind.insert(3, hi2, (s1, s3), ext)
            ms.insert(3, hm2, (s1, s3), ext)
        assert ms.space_cells() < ind.space_cells()


class TestGlobalIndependentStore:
    def _setup(self):
        q1 = IndependentTCStore(2)
        q2 = IndependentTCStore(1)
        store = GlobalIndependentStore([q1, q2])
        s1, s3, s5 = sigma(1), sigma(3), sigma(5)
        h1 = q1.insert(1, q1.root, (), s1)
        leaf1 = q1.insert(2, h1, (s1,), s3)
        leaf2 = q2.insert(1, q2.root, (), s5)
        return store, q1, q2, leaf1, leaf2, (s1, s3, s5)

    def test_needs_two_subqueries(self):
        with pytest.raises(ValueError):
            GlobalIndependentStore([IndependentTCStore(1)])

    def test_level1_delegates(self):
        store, _, _, leaf1, _, (s1, s3, _) = self._setup()
        assert store.read(1) == [(leaf1, (s1, s3))]
        assert store.count(1) == 1

    def test_insert_and_level_bounds(self):
        store, _, _, leaf1, leaf2, (s1, s3, s5) = self._setup()
        store.insert(2, leaf1, (s1, s3), leaf2, (s5,))
        assert [flat for _, flat in store.read(2)] == [(s1, s3, s5)]
        with pytest.raises(ValueError):
            store.insert(1, leaf1, (s1, s3), leaf2, (s5,))

    def test_delete_edge_direct(self):
        """Unlike the MS-tree global store, expired edges are deleted here
        directly (flattened tuples contain the edges)."""
        store, _, _, leaf1, leaf2, (s1, s3, s5) = self._setup()
        store.insert(2, leaf1, (s1, s3), leaf2, (s5,))
        assert store.delete_edge(s3) == 1
        assert store.count(2) == 0
