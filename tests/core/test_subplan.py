"""Canonicalisation of TC-subqueries: ``subplan_signature``.

The signature is the sub-plan cache key, so its equivalence classes must
be exactly "maintains identical expansion lists on every stream": equal
under vertex/edge renaming, different whenever labels, the
equality-constraint shape (vertex sharing, loops) or the sequence order
differ, and absent (``None``) when a label cannot be hashed.
"""

import pytest

from repro import ANY, QueryGraph
from repro.core.decomposition import subplan_signature


def chain(labels, *, vertex_labels=None, vprefix="v", eprefix="e"):
    """A labelled path query whose edges form a full timing chain."""
    query = QueryGraph()
    n = len(labels)
    for i in range(n + 1):
        vlabel = vertex_labels[i] if vertex_labels else "N"
        query.add_vertex(f"{vprefix}{i}", vlabel)
    for i, label in enumerate(labels):
        query.add_edge(f"{eprefix}{i}", f"{vprefix}{i}", f"{vprefix}{i + 1}",
                       label=label)
    query.add_timing_chain(*[f"{eprefix}{i}" for i in range(n)])
    return query, tuple(f"{eprefix}{i}" for i in range(n))


class TestRenamingInvariance:
    def test_vertex_and_edge_ids_do_not_matter(self):
        q1, seq1 = chain(["x", "y"])
        q2, seq2 = chain(["x", "y"], vprefix="node", eprefix="arc")
        assert subplan_signature(q1, seq1) == subplan_signature(q2, seq2)

    def test_same_query_same_sequence_is_deterministic(self):
        q, seq = chain(["x", "y", "z"])
        assert subplan_signature(q, seq) == subplan_signature(q, seq)

    def test_subsequence_of_larger_query_matches_standalone(self):
        """A 2-edge sub-plan inside a larger query canonicalises to the
        same signature as the same 2-edge pattern registered alone."""
        big = QueryGraph()
        for i in range(4):
            big.add_vertex(f"w{i}", "N")
        big.add_edge("a", "w0", "w1", label="x")
        big.add_edge("b", "w1", "w2", label="y")
        big.add_edge("c", "w2", "w3", label="z")
        big.add_timing_chain("a", "b")
        small, seq = chain(["x", "y"])
        assert subplan_signature(big, ("a", "b")) == \
            subplan_signature(small, seq)


class TestDiscriminations:
    def test_edge_labels_matter(self):
        q1, seq = chain(["x", "y"])
        q2, _ = chain(["x", "z"])
        assert subplan_signature(q1, seq) != subplan_signature(q2, seq)

    def test_vertex_labels_matter(self):
        q1, seq = chain(["x", "y"], vertex_labels=["A", "B", "C"])
        q2, _ = chain(["x", "y"], vertex_labels=["A", "B", "B"])
        assert subplan_signature(q1, seq) != subplan_signature(q2, seq)

    def test_vertex_sharing_shape_matters(self):
        """A path a→b→c and a fork a→b, a→c carry the same label triples
        but different equality constraints — they must not share."""
        path, seq = chain(["x", "x"])
        fork = QueryGraph()
        for v in "abc":
            fork.add_vertex(v, "N")
        fork.add_edge("e0", "a", "b", label="x")
        fork.add_edge("e1", "a", "c", label="x")
        fork.add_timing_chain("e0", "e1")
        assert subplan_signature(path, seq) != \
            subplan_signature(fork, ("e0", "e1"))

    def test_loops_are_encoded(self):
        loop = QueryGraph()
        loop.add_vertex("a", "N")
        loop.add_edge("e0", "a", "a", label="x")
        plain, seq = chain(["x"])
        assert subplan_signature(loop, ("e0",)) != \
            subplan_signature(plain, seq)

    def test_sequence_order_matters(self):
        """The timing skeleton is the sequence order: x-then-y is a
        different sub-plan from y-then-x."""
        q1, _ = chain(["x", "y"])
        q2 = QueryGraph()
        for i in range(3):
            q2.add_vertex(f"v{i}", "N")
        q2.add_edge("e1", "v1", "v2", label="y")
        q2.add_edge("e0", "v0", "v1", label="x")
        q2.add_timing_chain("e1", "e0")
        assert subplan_signature(q1, ("e0", "e1")) != \
            subplan_signature(q2, ("e1", "e0"))


class TestEdgeCases:
    def test_wildcard_labels_are_part_of_the_signature(self):
        q1, seq = chain([ANY, "y"])
        q2, _ = chain(["x", "y"])
        sig = subplan_signature(q1, seq)
        assert sig is not None
        assert sig != subplan_signature(q2, seq)
        q3, seq3 = chain([ANY, "y"], vprefix="u", eprefix="f")
        assert sig == subplan_signature(q3, seq3)

    def test_unhashable_label_yields_none(self):
        query = QueryGraph()
        query.add_vertex("a", "N")
        query.add_vertex("b", "N")
        query.add_edge("e0", "a", "b", label=["un", "hashable"])
        assert subplan_signature(query, ("e0",)) is None

    def test_signature_is_hashable_and_length_preserving(self):
        q, seq = chain(["x", "y", "z"])
        sig = subplan_signature(q, seq)
        assert len(sig) == 3
        hash(sig)           # usable as a dict key
        with pytest.raises(TypeError):
            hash(subplan_signature(q, seq) + ([],))  # sanity: lists aren't
