"""TC-query machinery: Definitions 7–8 and TCsub(Q) (Algorithm 5)."""

from repro.core.tc import (
    find_timing_sequence, is_prefix_connected, is_tc_query,
    is_timing_sequence, tc_subqueries,
)

from ..conftest import fig5_query, path_query


class TestPrefixConnected:
    def test_running_example_sequences(self):
        q = fig5_query()
        assert is_prefix_connected(q, [6, 5, 4])
        assert is_prefix_connected(q, [2, 5, 6])
        # 6 and 3 share no vertex → not prefix-connected at step 2.
        assert not is_prefix_connected(q, [6, 3, 1])

    def test_empty_sequence_not_connected(self):
        assert not is_prefix_connected(fig5_query(), [])

    def test_single_edge_is_connected(self):
        assert is_prefix_connected(fig5_query(), [1])


class TestTimingSequence:
    def test_paper_example(self):
        """{6, 5, 4} with 6 ≺ 5 ≺ 4 is the paper's TC-subquery example."""
        q = fig5_query()
        assert is_timing_sequence(q, [6, 5, 4])
        assert not is_timing_sequence(q, [6, 4, 5])   # 4 ⊀ 5
        assert not is_timing_sequence(q, [6, 3, 1])   # chain ok, connectivity not

    def test_whole_query_is_not_tc(self):
        """The paper states the running example Q is not a TC-query."""
        q = fig5_query()
        assert not is_tc_query(q)
        assert find_timing_sequence(q) is None

    def test_tc_subquery_detection(self):
        q = fig5_query()
        assert is_tc_query(q, [6, 5, 4])
        assert is_tc_query(q, [3, 1])
        assert is_tc_query(q, [2])
        assert not is_tc_query(q, [6, 3, 1])

    def test_chain_path_query_is_tc(self):
        q = path_query(4, timing="chain")
        seq = find_timing_sequence(q)
        assert seq == ("e0", "e1", "e2", "e3")

    def test_reverse_chain_path_is_tc_backwards(self):
        q = path_query(3, timing="reverse")
        assert find_timing_sequence(q) == ("e2", "e1", "e0")

    def test_empty_order_multiedge_query_not_tc(self):
        q = path_query(3, timing="empty")
        assert not is_tc_query(q)
        assert is_tc_query(q, ["e1"])   # single edges always are


class TestTCsub:
    def test_running_example_has_exactly_ten(self):
        """§VI-B enumerates TCsub(Q) for the running example: {6,5,4},
        {3,1}, {5,4}, {6,5}, and the six single edges."""
        q = fig5_query()
        subs = tc_subqueries(q)
        expected = {
            frozenset({6, 5, 4}): (6, 5, 4),
            frozenset({3, 1}): (3, 1),
            frozenset({5, 4}): (5, 4),
            frozenset({6, 5}): (6, 5),
            frozenset({1}): (1,),
            frozenset({2}): (2,),
            frozenset({3}): (3,),
            frozenset({4}): (4,),
            frozenset({5}): (5,),
            frozenset({6}): (6,),
        }
        assert subs == expected

    def test_every_tcsub_entry_is_a_timing_sequence(self):
        q = fig5_query()
        for seq in tc_subqueries(q).values():
            assert is_timing_sequence(q, seq)

    def test_full_order_path_has_all_prefix_intervals(self):
        """On a path with full chain order, the TC-subqueries are exactly
        the contiguous timestamp intervals that stay connected — for a path
        with aligned chain this is all contiguous subpaths."""
        q = path_query(3, timing="chain")
        subs = tc_subqueries(q)
        # Contiguous runs of e0..e2: 3 singles + 2 pairs + 1 triple... plus
        # the full 4-run on 4 edges: n(n+1)/2 = 10 for n=4? path_query(3)
        # has 3 edges → 3 + 2 + 1 = 6.
        assert len(subs) == 6

    def test_empty_order_yields_singletons_only(self):
        q = path_query(4, timing="empty")
        subs = tc_subqueries(q)
        assert all(len(key) == 1 for key in subs)
        assert len(subs) == 4
