"""TimingOrder: strict-partial-order algebra (Definition 3, Definition 6)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.timing import TimingCycleError, TimingOrder


@pytest.fixture
def diamond():
    """a ≺ b, a ≺ c, b ≺ d, c ≺ d."""
    return TimingOrder.from_pairs(
        "abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])


class TestConstruction:
    def test_unknown_edge_rejected(self):
        order = TimingOrder(["a"])
        with pytest.raises(KeyError):
            order.add_constraint("a", "z")

    def test_self_loop_rejected(self):
        order = TimingOrder(["a"])
        with pytest.raises(TimingCycleError):
            order.add_constraint("a", "a")

    def test_two_cycle_rejected(self):
        order = TimingOrder(["a", "b"])
        order.add_constraint("a", "b")
        with pytest.raises(TimingCycleError):
            order.add_constraint("b", "a")

    def test_transitive_cycle_rejected(self):
        order = TimingOrder.from_pairs("abc", [("a", "b"), ("b", "c")])
        with pytest.raises(TimingCycleError):
            order.add_constraint("c", "a")

    def test_total_order_constructor(self):
        order = TimingOrder.total_order("abc")
        assert order.is_total()
        assert order.precedes("a", "c")


class TestClosure:
    def test_successors_are_transitive(self, diamond):
        assert diamond.successors("a") == {"b", "c", "d"}
        assert diamond.successors("d") == frozenset()

    def test_predecessors_inverse_of_successors(self, diamond):
        assert diamond.predecessors("d") == {"a", "b", "c"}
        assert diamond.predecessors("a") == frozenset()

    def test_precedes(self, diamond):
        assert diamond.precedes("a", "d")
        assert not diamond.precedes("b", "c")
        assert not diamond.precedes("d", "a")

    def test_comparable(self, diamond):
        assert diamond.comparable("a", "d")
        assert not diamond.comparable("b", "c")

    def test_preq_definition6(self, diamond):
        assert diamond.preq("d") == {"a", "b", "c", "d"}
        assert diamond.preq("b") == {"a", "b"}
        assert diamond.preq("a") == {"a"}

    def test_closure_cache_invalidated_on_new_constraint(self):
        order = TimingOrder.from_pairs("abc", [("a", "b")])
        assert order.successors("a") == {"b"}
        order.add_constraint("b", "c")
        assert order.successors("a") == {"b", "c"}


class TestSequences:
    def test_linear_extension_accepts_valid(self, diamond):
        assert diamond.is_linear_extension(["a", "b", "c", "d"])
        assert diamond.is_linear_extension(["a", "c", "b", "d"])

    def test_linear_extension_rejects_invalid(self, diamond):
        assert not diamond.is_linear_extension(["b", "a", "c", "d"])
        assert not diamond.is_linear_extension(["a", "b", "c"])   # incomplete
        assert not diamond.is_linear_extension(["a", "a", "b", "d"])

    def test_chain_requires_consecutive_precedence(self, diamond):
        # a,b,d is a chain; a,b,c is not (b ⊀ c).
        assert diamond.is_chain(["a", "b", "d"])
        assert not diamond.is_chain(["a", "b", "c"])

    def test_enumerate_linear_extensions(self, diamond):
        exts = set(diamond.linear_extensions())
        assert exts == {("a", "b", "c", "d"), ("a", "c", "b", "d")}

    def test_empty_and_total_predicates(self):
        assert TimingOrder("ab").is_empty()
        assert not TimingOrder.total_order("ab").is_empty()
        assert TimingOrder.total_order("abc").is_total()
        assert not TimingOrder.from_pairs("abc", [("a", "b")]).is_total()


class TestRestriction:
    def test_restriction_keeps_transitive_pairs(self):
        order = TimingOrder.from_pairs("abc", [("a", "b"), ("b", "c")])
        sub = order.restricted_to(["a", "c"])
        assert sub.precedes("a", "c")

    def test_restriction_unknown_edges_rejected(self, diamond):
        with pytest.raises(KeyError):
            diamond.restricted_to(["a", "zz"])


class TestTimestamps:
    def test_check_timestamps(self, diamond):
        assert diamond.check_timestamps({"a": 1, "b": 2, "c": 3, "d": 4})
        assert not diamond.check_timestamps({"a": 5, "b": 2, "c": 3, "d": 4})

    def test_check_timestamps_ignores_absent_edges(self, diamond):
        assert diamond.check_timestamps({"b": 10, "c": 1})  # incomparable


@given(st.lists(st.sampled_from("abcdef"), min_size=2, max_size=6,
                unique=True),
       st.data())
def test_random_dag_closure_is_a_strict_partial_order(edges, data):
    """Property: whatever constraints were accepted, the closure is
    irreflexive, antisymmetric and transitive."""
    order = TimingOrder(edges)
    pairs = data.draw(st.lists(
        st.tuples(st.sampled_from(edges), st.sampled_from(edges)),
        max_size=12))
    for before, after in pairs:
        try:
            order.add_constraint(before, after)
        except (TimingCycleError, KeyError):
            pass
    for a in edges:
        assert not order.precedes(a, a)
        for b in edges:
            if order.precedes(a, b):
                assert not order.precedes(b, a)
                for c in edges:
                    if order.precedes(b, c):
                        assert order.precedes(a, c)
