"""Attack injection into background traffic (Fig. 22 workload machinery)."""

import pytest

from repro import TimingMatcher
from repro.datasets import (
    exfiltration_attack_query, generate_netflow_stream, inject_attack,
)
from repro.datasets.netflow import CNC_PORT


@pytest.fixture(scope="module")
def background():
    return generate_netflow_stream(1000, seed=55, num_ips=80)


class TestInjectAttack:
    def test_adds_exactly_five_edges(self, background):
        merged = inject_attack(background)
        assert len(merged) == len(background) + 5

    def test_merged_stream_strictly_monotone(self, background):
        merged = inject_attack(background)
        stamps = [e.timestamp for e in merged]
        assert all(a < b for a, b in zip(stamps, stamps[1:]))

    def test_attack_edges_follow_the_pattern(self, background):
        merged = inject_attack(background, victim="V", web_server="W",
                               cnc_server="C")
        attack = [e for e in merged if e.src in ("V", "W", "C")]
        assert len(attack) == 5
        assert [(e.src, e.dst) for e in attack] == [
            ("V", "W"), ("W", "V"), ("V", "C"), ("C", "V"), ("V", "C")]
        stamps = [e.timestamp for e in attack]
        assert stamps == sorted(stamps)
        assert attack[2].label[1] == CNC_PORT

    def test_custom_start_time(self, background):
        merged = inject_attack(background, start_time=5.0, step=0.001)
        attack = [e for e in merged
                  if e.src.startswith("10.0.0.66") or e.dst == "10.0.0.66"
                  or "203.0.113.9" in (e.src, e.dst)
                  or "172.16.0.80" in (e.src, e.dst)]
        assert min(e.timestamp for e in attack) == pytest.approx(5.001)

    def test_detectable_end_to_end(self, background):
        merged = inject_attack(background)
        matcher = TimingMatcher(exfiltration_attack_query(), 30.0)
        found = []
        for edge in merged:
            found.extend(matcher.push(edge))
        assert len(found) == 1

    def test_scrambled_attack_not_detected(self, background):
        """Injecting the five edges but expiring between steps breaks the
        window co-residency — no detection (negative control)."""
        merged = inject_attack(background, step=60.0)   # steps 60 s apart
        matcher = TimingMatcher(exfiltration_attack_query(), 30.0)
        found = []
        for edge in merged:
            found.extend(matcher.push(edge))
        assert found == []
