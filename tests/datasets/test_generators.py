"""Synthetic dataset generators: schema, skew, determinism."""

from collections import Counter

import pytest

from repro.datasets import (
    Clock, ZipfSampler, generate_lsbench_stream, generate_netflow_stream,
    generate_wikitalk_stream,
)
import random


class TestZipfSampler:
    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler([])

    def test_rank_one_dominates(self):
        sampler = ZipfSampler(list(range(50)), alpha=1.2)
        rng = random.Random(1)
        counts = Counter(sampler.sample(rng) for _ in range(5000))
        assert counts[0] == max(counts.values())
        assert counts[0] > 5 * counts.get(30, 1)

    def test_pair_is_distinct(self):
        sampler = ZipfSampler(["a", "b"], alpha=1.0)
        rng = random.Random(2)
        for _ in range(100):
            x, y = sampler.sample_pair(rng)
            assert x != y

    def test_pair_needs_two_items(self):
        with pytest.raises(ValueError):
            ZipfSampler(["only"]).sample_pair(random.Random(0))


class TestClock:
    def test_strictly_increasing(self):
        clock = Clock(rate=5.0)
        rng = random.Random(3)
        stamps = [clock.tick(rng) for _ in range(200)]
        assert all(a < b for a, b in zip(stamps, stamps[1:]))

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Clock(rate=0)


@pytest.mark.parametrize("generator,label_check", [
    (generate_netflow_stream, lambda e: e.src_label == "IP"),
    (generate_wikitalk_stream, lambda e: len(e.src_label) == 1),
    (generate_lsbench_stream,
     lambda e: e.src_label in {"user", "post", "photo"}),
])
class TestGeneratorsCommon:
    def test_size_and_monotone_timestamps(self, generator, label_check):
        stream = generator(500, seed=4)
        assert len(stream) == 500
        stamps = [e.timestamp for e in stream]
        assert all(a < b for a, b in zip(stamps, stamps[1:]))

    def test_deterministic_per_seed(self, generator, label_check):
        a = generator(200, seed=7)
        b = generator(200, seed=7)
        c = generator(200, seed=8)
        assert [e.edge_id for e in a] == [e.edge_id for e in b]
        assert [e.edge_id for e in a] != [e.edge_id for e in c]

    def test_labels_follow_schema(self, generator, label_check):
        stream = generator(300, seed=5)
        assert all(label_check(e) for e in stream)


class TestNetflowSpecifics:
    def test_port_skew_matches_paper_statistic(self):
        """§VII-A: the top handful of destination ports dominate (paper:
        top 0.01% of ports cover >50% of records)."""
        stream = generate_netflow_stream(4000, seed=1)
        ports = Counter(e.label[1] for e in stream)
        top6 = sum(count for _, count in ports.most_common(6))
        assert top6 > 0.5 * len(stream)

    def test_edge_labels_are_five_tuple_shaped(self):
        stream = generate_netflow_stream(100, seed=2)
        for edge in stream:
            sport, dport, proto = edge.label
            assert 49152 <= sport < 65536
            assert proto in ("tcp", "udp")


class TestLsbenchSpecifics:
    def test_referential_integrity_of_likes(self):
        """A like must target a post created earlier in the stream."""
        stream = generate_lsbench_stream(1000, seed=3)
        created = set()
        for edge in stream:
            if edge.label == "posts":
                created.add(edge.dst)
            elif edge.label == "likes":
                assert edge.dst in created

    def test_predicates_from_schema(self):
        stream = generate_lsbench_stream(800, seed=4)
        predicates = {e.label for e in stream}
        assert predicates <= {"likes", "posts", "knows", "replyOf",
                              "uploads", "tags", "locatedAt"}
        assert "posts" in predicates
