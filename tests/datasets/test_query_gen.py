"""Query generation (§VII-B protocol): connectivity, satisfiability, k."""

import random

import pytest

from repro import TimingMatcher
from repro.core.decomposition import greedy_decomposition
from repro.datasets import (
    build_query, generate_query, generate_query_set, generate_query_with_k,
    generate_wikitalk_stream, random_walk_edges, window_slice,
)


@pytest.fixture(scope="module")
def stream():
    return generate_wikitalk_stream(3000, seed=6)


@pytest.fixture(scope="module")
def population(stream):
    return window_slice(stream, 600)


class TestRandomWalk:
    def test_walk_is_connected_and_distinct(self, population):
        rng = random.Random(0)
        walk = random_walk_edges(population, 6, rng)
        assert walk is not None
        assert len(set(walk)) == 6
        # Connectivity: each edge after the first touches an earlier vertex.
        seen = {walk[0].src, walk[0].dst}
        for edge in walk[1:]:
            assert edge.src in seen or edge.dst in seen
            seen.update((edge.src, edge.dst))

    def test_walk_too_large_returns_none(self):
        rng = random.Random(0)
        assert random_walk_edges([], 3, rng) is None

    def test_walk_deterministic_per_seed(self, population):
        a = random_walk_edges(population, 5, random.Random(9))
        b = random_walk_edges(population, 5, random.Random(9))
        assert [e.edge_id for e in a] == [e.edge_id for e in b]


class TestBuildQuery:
    def test_structure_mirrors_walk(self, population):
        rng = random.Random(1)
        walk = random_walk_edges(population, 5, rng)
        q = build_query(walk, timing="empty")
        assert q.num_edges == 5
        assert q.is_weakly_connected()

    def test_full_order_is_timestamp_chain(self, population):
        rng = random.Random(2)
        walk = random_walk_edges(population, 4, rng)
        q = build_query(walk, timing="full")
        assert q.timing.is_total()

    def test_random_order_consistent_with_timestamps(self, population):
        """The permutation rule can only produce constraints agreeing with
        the walk's timestamps, so the walk itself always satisfies them —
        the paper's embedding guarantee."""
        rng = random.Random(3)
        walk = random_walk_edges(population, 5, rng)
        q = build_query(walk, timing="random", rng=rng)
        ts = {f"e{i}": walk[i].timestamp for i in range(len(walk))}
        assert q.timing.check_timestamps(ts)

    def test_random_requires_rng(self, population):
        walk = random_walk_edges(population, 3, random.Random(4))
        with pytest.raises(ValueError):
            build_query(walk, timing="random")
        with pytest.raises(ValueError):
            build_query(walk, timing="sometimes")

    def test_generalize_label_applied(self, population):
        rng = random.Random(5)
        walk = random_walk_edges(population, 3, rng)
        q = build_query(walk, timing="empty",
                        generalize_label=lambda lbl: "WILD")
        assert all(edge.label == "WILD" for edge in q.edges())


class TestGeneratedQueriesHaveAnswers:
    def test_walked_query_matches_its_stream(self, stream, population):
        """End-to-end embedding guarantee: replaying the stream through the
        engine with a window covering the walk must report ≥ 1 match."""
        rng = random.Random(6)
        q = generate_query(population, 4, rng, timing="random")
        assert q is not None
        duration = stream.window_units_to_duration(600)
        matcher = TimingMatcher(q, duration)
        total = 0
        for edge in stream:
            total += len(matcher.push(edge))
        assert total >= 1


class TestDecompositionSizeControl:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_exact_k(self, population, k):
        rng = random.Random(7)
        q = generate_query_with_k(population, 4, k, rng)
        assert q is not None
        assert len(greedy_decomposition(q)) == k

    def test_k_bounds_validated(self, population):
        rng = random.Random(8)
        with pytest.raises(ValueError):
            generate_query_with_k(population, 4, 0, rng)
        with pytest.raises(ValueError):
            generate_query_with_k(population, 4, 5, rng)


class TestQuerySet:
    def test_five_orders_per_graph(self, population):
        rng = random.Random(9)
        queries = generate_query_set(population, sizes=[3, 4], per_size=2,
                                     rng=rng)
        assert len(queries) == 2 * 2 * 5
        sizes = [q.num_edges for q in queries]
        assert sizes.count(3) == 10 and sizes.count(4) == 10
        # Each graph's five variants: one total, one empty, three in between.
        first_graph = queries[:5]
        assert first_graph[0].timing.is_total()
        assert first_graph[1].timing.is_empty()
