"""Count-based sliding window + engine integration with the oracle."""

import pytest
from hypothesis import given, strategies as st

from repro import StreamEdge, TimingMatcher
from repro.baselines.naive import NaiveSnapshotMatcher
from repro.graph.count_window import CountSlidingWindow

from ..conftest import fig5_query, random_stream


def edge(ts):
    return StreamEdge(f"u{ts}", f"v{ts}", src_label="A", dst_label="B",
                      timestamp=ts)


class TestCountWindow:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CountSlidingWindow(0)

    def test_eviction_is_fifo_at_capacity(self):
        w = CountSlidingWindow(2)
        assert w.push(edge(1)) == []
        assert w.push(edge(2)) == []
        assert [e.timestamp for e in w.push(edge(3))] == [1]
        assert [e.timestamp for e in w.edges()] == [2, 3]
        assert w.oldest().timestamp == 2
        assert w.newest().timestamp == 3

    def test_monotone_timestamps_enforced(self):
        w = CountSlidingWindow(3)
        w.push(edge(5))
        with pytest.raises(ValueError):
            w.push(edge(5))

    def test_advance_never_expires(self):
        w = CountSlidingWindow(2)
        w.push(edge(1))
        assert w.advance(1e9) == []
        assert len(w) == 1
        with pytest.raises(ValueError):
            w.advance(0.5)

    @given(st.integers(min_value=1, max_value=10),
           st.integers(min_value=1, max_value=50))
    def test_size_never_exceeds_capacity(self, capacity, n):
        w = CountSlidingWindow(capacity)
        expired = 0
        for ts in range(1, n + 1):
            expired += len(w.push(edge(float(ts))))
        assert len(w) == min(capacity, n)
        assert expired == max(0, n - capacity)


class TestEngineWithCountWindow:
    def test_engine_accepts_window_object(self):
        matcher = TimingMatcher(fig5_query(), CountSlidingWindow(9))
        assert "|W|=9" in repr(matcher)

    def test_count_window_engine_matches_oracle(self):
        """The engine is window-policy-agnostic: with the same count window
        on both sides, Timing equals the naive oracle at every step."""
        query = fig5_query()
        engine = TimingMatcher(query, CountSlidingWindow(25))
        oracle = NaiveSnapshotMatcher(query, CountSlidingWindow(25))
        for e in random_stream(13, 120, 8, labels="abcdef"):
            assert set(engine.push(e)) == set(oracle.push(e))
        assert set(engine.current_matches()) == set(oracle.current_matches())

    def test_small_capacity_limits_matches(self):
        """A capacity smaller than the query size can never hold a match."""
        query = fig5_query()
        engine = TimingMatcher(query, CountSlidingWindow(4))
        total = 0
        for e in random_stream(13, 150, 8, labels="abcdef"):
            total += len(engine.push(e))
        assert total == 0
