"""Unit tests for StreamEdge identity, labels and helpers."""


from repro import StreamEdge


def edge(src="a1", dst="b2", ts=1.0, label=None, edge_id=None):
    return StreamEdge(src, dst, src_label=src[0], dst_label=dst[0],
                      timestamp=ts, label=label, edge_id=edge_id)


class TestIdentity:
    def test_default_edge_id_is_src_dst_timestamp(self):
        e = edge("a1", "b2", 3.0)
        assert e.edge_id == ("a1", "b2", 3.0)

    def test_equality_is_by_edge_id(self):
        assert edge(ts=1.0) == edge(ts=1.0)
        assert edge(ts=1.0) != edge(ts=2.0)

    def test_explicit_edge_id_overrides(self):
        a = edge(edge_id="x")
        b = edge(ts=99.0, edge_id="x")
        assert a == b

    def test_hash_consistent_with_equality(self):
        assert len({edge(ts=1.0), edge(ts=1.0), edge(ts=2.0)}) == 2

    def test_not_equal_to_other_types(self):
        assert edge() != "not an edge"
        assert (edge() == object()) is False


class TestAccessors:
    def test_endpoints(self):
        assert edge("a1", "b2").endpoints == ("a1", "b2")

    def test_touches(self):
        e = edge("a1", "b2")
        assert e.touches("a1")
        assert e.touches("b2")
        assert not e.touches("c3")

    def test_labels_stored(self):
        e = StreamEdge("x", "y", src_label="L1", dst_label="L2",
                       timestamp=0.5, label=("p", 80))
        assert e.src_label == "L1"
        assert e.dst_label == "L2"
        assert e.label == ("p", 80)

    def test_repr_mentions_endpoints_and_time(self):
        text = repr(edge("a1", "b2", 7.0))
        assert "a1" in text and "b2" in text and "7.0" in text

    def test_repr_includes_label_when_present(self):
        assert "http" in repr(edge(label="http"))
        assert "label" not in repr(edge(label=None))
