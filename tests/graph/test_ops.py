"""Stream combinators: merge/filter/rescale/slice/relabel."""

import pytest
from hypothesis import given, strategies as st

from repro import GraphStream, StreamEdge
from repro.graph.ops import (
    filter_stream, merge_streams, relabel_stream, rescale_time, time_slice,
)

from ..conftest import fig3_stream


def edge(ts, src="u", dst="v", label=None):
    return StreamEdge(f"{src}{ts}", f"{dst}{ts}", src_label=src,
                      dst_label=dst, timestamp=ts, label=label)


class TestMerge:
    def test_interleaves_by_timestamp(self):
        a = GraphStream([edge(1.0), edge(3.0)])
        b = GraphStream([edge(2.0), edge(4.0)])
        merged = merge_streams(a, b)
        assert [e.timestamp for e in merged] == [1.0, 2.0, 3.0, 4.0]

    def test_collisions_nudged_forward(self):
        a = GraphStream([edge(1.0, src="a")])
        b = GraphStream([edge(1.0, src="b")])
        merged = merge_streams(a, b)
        stamps = [e.timestamp for e in merged]
        assert stamps[0] == 1.0
        assert stamps[1] > 1.0
        assert stamps[1] - 1.0 < 1e-6

    def test_empty_inputs(self):
        assert len(merge_streams(GraphStream(), GraphStream())) == 0
        only = merge_streams(GraphStream([edge(1.0)]), GraphStream())
        assert len(only) == 1

    @given(st.lists(st.floats(min_value=0.1, max_value=50, allow_nan=False),
                    min_size=0, max_size=15, unique=True),
           st.lists(st.floats(min_value=0.1, max_value=50, allow_nan=False),
                    min_size=0, max_size=15, unique=True))
    def test_merge_preserves_strict_monotonicity(self, xs, ys):
        a = GraphStream([edge(t, src="a") for t in sorted(xs)])
        b = GraphStream([edge(t, src="b") for t in sorted(ys)])
        merged = merge_streams(a, b)
        stamps = [e.timestamp for e in merged]
        assert len(merged) == len(xs) + len(ys)
        assert all(s < t for s, t in zip(stamps, stamps[1:]))


class TestFilterSliceRescale:
    def test_filter(self):
        got = filter_stream(fig3_stream(), lambda e: e.src_label == "d")
        assert {e.timestamp for e in got} == {4, 7, 9, 10}

    def test_time_slice_half_open(self):
        got = time_slice(fig3_stream(), 3, 6)
        assert [e.timestamp for e in got] == [4, 5, 6]
        with pytest.raises(ValueError):
            time_slice(fig3_stream(), 6, 3)

    def test_rescale_preserves_order_and_matches(self):
        """Rescaling cannot change time-constrained matches (relative order
        is untouched) — verified through the engine."""
        from repro import TimingMatcher
        from ..conftest import fig5_query
        original = fig3_stream()
        slowed = rescale_time(original, 10.0)
        m1 = TimingMatcher(fig5_query(), 9.0)
        m2 = TimingMatcher(fig5_query(), 90.0)   # window scaled alongside
        count1 = sum(len(m1.push(e)) for e in original)
        count2 = sum(len(m2.push(e)) for e in slowed)
        assert count1 == count2 == 1

    def test_rescale_validation_and_empty(self):
        with pytest.raises(ValueError):
            rescale_time(fig3_stream(), 0)
        assert len(rescale_time([], 2.0)) == 0

    def test_relabel(self):
        got = relabel_stream(fig3_stream(),
                             vertex_label=str.upper,
                             edge_label=lambda l: "X")
        assert got[0].src_label == "E"
        assert got[0].label == "X"
        assert got[0].timestamp == 1
