"""Unit tests for the shared-window substrate: the expiry-subscription
hooks on both window policies, the :class:`SharedSlidingWindow` wrapper
(id index, duplicate probes, fan-out), and the per-matcher read-only view.
"""

import pickle

import pytest

from repro.graph.count_window import CountSlidingWindow
from repro.graph.shared_window import (
    SharedSlidingWindow, SharedWindowView, window_policy_key,
)
from repro.graph.window import SlidingWindow

from ..conftest import make_edge


class TestSubscriptionHooks:
    def test_time_window_notifies_each_expiry_in_order(self):
        window = SlidingWindow(5.0)
        seen = []
        window.subscribe(seen.append)
        for t in (1.0, 2.0, 3.0):
            window.push(make_edge("a1", "b1", t))
        window.advance(7.5)             # expires t=1 and t=2
        assert [e.timestamp for e in seen] == [1.0, 2.0]
        window.push(make_edge("a2", "b2", 9.0))     # expires t=3 via push
        assert [e.timestamp for e in seen] == [1.0, 2.0, 3.0]

    def test_count_window_notifies_on_eviction(self):
        window = CountSlidingWindow(2)
        seen = []
        window.subscribe(seen.append)
        for t in (1.0, 2.0, 3.0, 4.0):
            window.push(make_edge("a1", "b1", t))
        assert [e.timestamp for e in seen] == [1.0, 2.0]

    def test_unsubscribe_stops_delivery_and_unknown_raises(self):
        window = SlidingWindow(1.0)
        seen = []
        callback = window.subscribe(seen.append)
        window.unsubscribe(callback)
        window.push(make_edge("a1", "b1", 1.0))
        window.push(make_edge("a2", "b2", 5.0))
        assert seen == []
        with pytest.raises(ValueError, match="not subscribed"):
            window.unsubscribe(callback)


class TestPolicyKey:
    def test_keys_group_by_policy_parameters(self):
        assert window_policy_key(SlidingWindow(5.0)) == \
            window_policy_key(SlidingWindow(5.0)) == ("time", 5.0)
        assert window_policy_key(CountSlidingWindow(7)) == ("count", 7)
        assert window_policy_key(SlidingWindow(5.0)) != \
            window_policy_key(SlidingWindow(6.0))

    def test_unshareable_policies_have_no_key(self):
        class CustomWindow(SlidingWindow):
            pass

        assert window_policy_key(CustomWindow(5.0)) is None
        assert window_policy_key(object()) is None


class TestSharedSlidingWindow:
    def test_rejects_non_policy_and_non_empty_policy(self):
        with pytest.raises(TypeError, match="shareable"):
            SharedSlidingWindow(object())
        window = SlidingWindow(5.0)
        window.push(make_edge("a1", "b1", 1.0))
        with pytest.raises(ValueError, match="empty"):
            SharedSlidingWindow(window)

    def test_bearer_index_tracks_live_ids(self):
        shared = SharedSlidingWindow(SlidingWindow(5.0))
        shared.push(make_edge("a1", "b1", 1.0))
        assert shared.bearer_timestamp("a1->b1@1.0") is None  # auto ids differ
        edge = make_edge("a2", "b2", 2.0)
        shared.push(edge)
        assert shared.bearer_timestamp(edge.edge_id) == 2.0
        shared.advance(7.5)                 # expires both
        assert shared.bearer_timestamp(edge.edge_id) is None
        assert len(shared) == 0

    def test_bearer_live_at_accounts_for_self_triggered_expiry(self):
        shared = SharedSlidingWindow(SlidingWindow(5.0))
        edge = make_edge("a1", "b1", 1.0)
        shared.push(edge)
        assert shared.bearer_live_at(edge.edge_id, 5.9)
        assert not shared.bearer_live_at(edge.edge_id, 6.1)

    def test_count_policy_bearer_never_expires_by_time(self):
        shared = SharedSlidingWindow(CountSlidingWindow(3))
        edge = make_edge("a1", "b1", 1.0)
        shared.push(edge)
        assert shared.bearer_live_at(edge.edge_id, 1e9)

    def test_coexisting_same_id_bearers_pair_by_timestamp(self):
        """Duplicate policy is the session's business: the buffer admits
        same-id bearers (a matcher registered mid-stream legitimately
        ingests a re-used id), keeps the latest bearer's timestamp, and
        deletes the index entry only when *that* bearer expires."""
        from repro import StreamEdge

        def flow(ts):
            return StreamEdge("a1", "b1", src_label="A", dst_label="A",
                              timestamp=ts, edge_id="flow")

        shared = SharedSlidingWindow(SlidingWindow(5.0))
        shared.push(flow(1.0))
        shared.push(flow(2.0))
        assert shared.bearer_timestamp("flow") == 2.0
        shared.advance(6.5)                 # expires only the t=1 bearer
        assert shared.bearer_timestamp("flow") == 2.0
        assert shared.bearer_live_at("flow", 6.5)
        shared.advance(7.5)                 # expires the t=2 bearer
        assert shared.bearer_timestamp("flow") is None

    def test_reused_id_after_expiry_is_not_a_duplicate(self):
        """A bearer past the window must not block its id's re-use, even
        before an advance has physically dropped it from the deque."""
        from repro import StreamEdge
        shared = SharedSlidingWindow(SlidingWindow(5.0))
        shared.push(StreamEdge("a1", "b1", src_label="A", dst_label="A",
                               timestamp=1.0, edge_id="flow"))
        assert not shared.bearer_live_at("flow", 20.0)
        shared.push(StreamEdge("a2", "b2", src_label="A", dst_label="A",
                               timestamp=20.0, edge_id="flow"))
        assert shared.bearer_timestamp("flow") == 20.0
        assert len(shared) == 1             # the push advanced the old out

    def test_expiry_fans_out_to_subscribers(self):
        shared = SharedSlidingWindow(SlidingWindow(2.0))
        first, second = [], []
        shared.subscribe(first.append)
        shared.subscribe(second.append)
        shared.push(make_edge("a1", "b1", 1.0))
        shared.push(make_edge("a2", "b2", 4.0))
        assert [e.timestamp for e in first] == [1.0]
        assert first == second


class TestSharedWindowView:
    def test_view_reads_the_shared_buffer(self):
        shared = SharedSlidingWindow(SlidingWindow(5.0))
        view = SharedWindowView(shared)
        assert view.duration == 5.0
        edge = make_edge("a1", "b1", 1.0)
        shared.push(edge)
        assert len(view) == 1 and edge in view
        assert view.edges() == [edge]
        assert view.oldest() is view.newest() is edge
        assert view.current_time == 1.0

    def test_view_refuses_mutation(self):
        view = SharedWindowView(SharedSlidingWindow(SlidingWindow(5.0)))
        with pytest.raises(RuntimeError, match="Session"):
            view.push(make_edge("a1", "b1", 1.0))
        with pytest.raises(RuntimeError, match="Session"):
            view.advance(2.0)

    def test_count_view_exposes_capacity_not_duration(self):
        view = SharedWindowView(SharedSlidingWindow(CountSlidingWindow(4)))
        assert view.capacity == 4
        assert getattr(view, "duration", None) is None

    def test_pickle_round_trip_preserves_buffer_and_index(self):
        shared = SharedSlidingWindow(SlidingWindow(5.0))
        edge = make_edge("a1", "b1", 1.0)
        shared.push(edge)
        view = SharedWindowView(shared)
        restored = pickle.loads(pickle.dumps((shared, view)))
        shared2, view2 = restored
        assert view2.shared is shared2          # identity preserved
        assert len(view2) == 1
        assert shared2.bearer_timestamp(edge.edge_id) == 1.0
