"""SnapshotGraph: incremental adjacency/label indexes and affected areas."""

import pytest
from hypothesis import given, strategies as st

from repro import SnapshotGraph, StreamEdge


def edge(src, dst, ts, label=None):
    return StreamEdge(src, dst, src_label=src[0], dst_label=dst[0],
                      timestamp=ts, label=label)


@pytest.fixture
def snapshot():
    s = SnapshotGraph()
    s.add_edge(edge("a1", "b1", 1))
    s.add_edge(edge("b1", "c1", 2))
    s.add_edge(edge("a1", "b1", 3))   # parallel edge, later timestamp
    return s


class TestMutation:
    def test_add_and_contains(self, snapshot):
        assert len(snapshot) == 3
        assert edge("a1", "b1", 1) in snapshot

    def test_duplicate_add_rejected(self, snapshot):
        with pytest.raises(ValueError):
            snapshot.add_edge(edge("a1", "b1", 1))

    def test_remove_unknown_rejected(self):
        with pytest.raises(KeyError):
            SnapshotGraph().remove_edge(edge("x1", "y1", 1))

    def test_vertex_vanishes_with_last_edge(self, snapshot):
        snapshot.remove_edge(edge("b1", "c1", 2))
        assert not snapshot.has_vertex("c1")
        assert snapshot.has_vertex("b1")  # still held by the parallel edges

    def test_vertex_label_conflict_rejected(self):
        s = SnapshotGraph()
        s.add_edge(edge("a1", "b1", 1))
        bad = StreamEdge("a1", "c1", src_label="Z", dst_label="c",
                         timestamp=2)
        with pytest.raises(ValueError):
            s.add_edge(bad)


class TestIndexes:
    def test_adjacency(self, snapshot):
        assert {e.timestamp for e in snapshot.out_edges("a1")} == {1, 3}
        assert {e.timestamp for e in snapshot.in_edges("b1")} == {1, 3}
        assert snapshot.degree("b1") == 3
        assert snapshot.neighbors("b1") == {"a1", "c1"}

    def test_term_label_index(self, snapshot):
        assert len(snapshot.edges_with_term_label("a", None, "b")) == 2
        assert snapshot.edges_with_term_label("a", "x", "b") == set()

    def test_term_label_index_shrinks_on_removal(self, snapshot):
        snapshot.remove_edge(edge("a1", "b1", 1))
        assert len(snapshot.edges_with_term_label("a", None, "b")) == 1

    def test_incident_edges(self, snapshot):
        assert len(snapshot.incident_edges("b1")) == 3


class TestAffectedArea:
    def test_zero_hops_is_roots(self, snapshot):
        assert snapshot.vertices_within_hops({"a1"}, 0) == {"a1"}

    def test_one_hop(self, snapshot):
        assert snapshot.vertices_within_hops({"a1"}, 1) == {"a1", "b1"}

    def test_two_hops_reaches_everything(self, snapshot):
        assert snapshot.vertices_within_hops({"a1"}, 2) == {"a1", "b1", "c1"}

    def test_unknown_roots_ignored(self, snapshot):
        assert snapshot.vertices_within_hops({"zz"}, 3) == set()

    def test_induced_edges(self, snapshot):
        got = snapshot.induced_edges({"a1", "b1"})
        assert {e.timestamp for e in got} == {1, 3}


class TestSpaceAccounting:
    def test_cells_scale_with_content(self):
        s = SnapshotGraph()
        assert s.logical_space_cells() == 0
        s.add_edge(edge("a1", "b1", 1))
        assert s.logical_space_cells() == 2 + 2  # 2 per edge + 2 vertices

    @given(st.integers(min_value=1, max_value=30))
    def test_add_remove_roundtrip_is_clean(self, n):
        s = SnapshotGraph()
        edges = [edge(f"v{i}", f"v{i + 1}", float(i)) for i in range(n)]
        for e in edges:
            s.add_edge(e)
        for e in edges:
            s.remove_edge(e)
        assert len(s) == 0
        assert s.num_vertices == 0
        assert s.logical_space_cells() == 0
