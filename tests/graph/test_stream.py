"""GraphStream validation and unit conversions."""

import pytest

from repro import GraphStream, StreamEdge


def edge(ts):
    return StreamEdge("u", "v", src_label="A", dst_label="B", timestamp=ts)


class TestAppend:
    def test_append_enforces_strict_monotonicity(self):
        s = GraphStream()
        s.append(edge(1.0))
        with pytest.raises(ValueError):
            s.append(edge(1.0))
        with pytest.raises(ValueError):
            s.append(edge(0.5))

    def test_constructor_accepts_iterable(self):
        s = GraphStream([edge(1), edge(2), edge(3)])
        assert len(s) == 3
        assert s[1].timestamp == 2

    def test_iteration_in_order(self):
        s = GraphStream([edge(1), edge(2)])
        assert [e.timestamp for e in s] == [1, 2]


class TestUnits:
    def test_mean_interarrival(self):
        s = GraphStream([edge(0), edge(2), edge(4), edge(6)])
        assert s.mean_interarrival == pytest.approx(2.0)
        assert s.timespan == pytest.approx(6.0)

    def test_window_units_conversion(self):
        """The paper's window sizes are multiples of the mean inter-arrival
        gap (§VII-C); 10K units over a unit-gap stream is a 10K duration."""
        s = GraphStream([edge(float(i)) for i in range(11)])
        assert s.window_units_to_duration(10_000) == pytest.approx(10_000.0)

    def test_degenerate_stream_units(self):
        assert GraphStream([edge(5)]).mean_interarrival == 1.0
        assert GraphStream().timespan == 0.0


class TestFromTuples:
    def test_three_tuples_with_label_map(self):
        s = GraphStream.from_tuples(
            [("x", "y", 1.0), ("y", "z", 2.0)],
            vertex_labels={"x": "A", "y": "B", "z": "A"})
        assert s[0].src_label == "A"
        assert s[1].dst_label == "A"
        assert s[0].label is None

    def test_four_tuples_carry_edge_labels(self):
        s = GraphStream.from_tuples([("x", "y", 1.0, "knows")])
        assert s[0].label == "knows"
        assert s[0].src_label == "x"  # identity labels by default

    def test_bad_arity_rejected(self):
        with pytest.raises(ValueError):
            GraphStream.from_tuples([("x", "y")])
