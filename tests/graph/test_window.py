"""Sliding-window semantics (Definition 2): span (t − |W|, t], FIFO expiry."""

import pytest
from hypothesis import given, strategies as st

from repro import SlidingWindow, StreamEdge


def edge(ts: float) -> StreamEdge:
    return StreamEdge(f"u{ts}", f"v{ts}", src_label="A", dst_label="B",
                      timestamp=ts)


class TestBasics:
    def test_positive_duration_required(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)
        with pytest.raises(ValueError):
            SlidingWindow(-1.5)

    def test_push_and_len(self):
        w = SlidingWindow(10)
        assert len(w) == 0
        w.push(edge(1))
        w.push(edge(2))
        assert len(w) == 2
        assert w.oldest().timestamp == 1
        assert w.newest().timestamp == 2

    def test_timestamps_must_strictly_increase(self):
        w = SlidingWindow(10)
        w.push(edge(5))
        with pytest.raises(ValueError):
            w.push(edge(5))
        with pytest.raises(ValueError):
            w.push(edge(4))

    def test_time_cannot_move_backwards(self):
        w = SlidingWindow(10)
        w.advance(7)
        with pytest.raises(ValueError):
            w.advance(6)


class TestExpiry:
    def test_paper_example_sigma1_expires_at_t10(self):
        """Fig. 4: with |W| = 9, σ1 (t=1) is in the window at t=9 but
        expires at t=10 because the span becomes (1, 10]."""
        w = SlidingWindow(9)
        for ts in range(1, 10):
            assert w.push(edge(ts)) == []
        expired = w.push(edge(10))
        assert [e.timestamp for e in expired] == [1]

    def test_boundary_is_half_open(self):
        # Span is (t − |W|, t]: an edge exactly at t − |W| is out.
        w = SlidingWindow(5)
        w.push(edge(0))
        assert [e.timestamp for e in w.push(edge(5))] == [0]
        assert len(w) == 1

    def test_multiple_expiries_in_order(self):
        w = SlidingWindow(5)
        for ts in (1, 2, 3):
            assert w.push(edge(ts)) == []
        expired = w.push(edge(10))
        assert [e.timestamp for e in expired] == [1, 2, 3]

    def test_advance_without_push(self):
        w = SlidingWindow(3)
        w.push(edge(1))
        w.push(edge(2))
        assert [e.timestamp for e in w.advance(4.5)] == [1]
        assert [e.timestamp for e in w.edges()] == [2]


class TestProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=5.0,
                              allow_nan=False), min_size=1, max_size=60),
           st.floats(min_value=0.5, max_value=20.0))
    def test_window_invariant_all_in_span(self, gaps, duration):
        """After any push sequence, every retained edge lies in
        (t − |W|, t] and edges are in timestamp order."""
        w = SlidingWindow(duration)
        t = 0.0
        for gap in gaps:
            t += gap
            w.push(edge(t))
            kept = [e.timestamp for e in w.edges()]
            assert all(t - duration < ts <= t for ts in kept)
            assert kept == sorted(kept)

    @given(st.lists(st.floats(min_value=0.01, max_value=5.0,
                              allow_nan=False), min_size=1, max_size=60),
           st.floats(min_value=0.5, max_value=20.0))
    def test_conservation_pushed_equals_kept_plus_expired(self, gaps, duration):
        w = SlidingWindow(duration)
        t, expired_total = 0.0, 0
        for gap in gaps:
            t += gap
            expired_total += len(w.push(edge(t)))
        assert expired_total + len(w) == len(gaps)
