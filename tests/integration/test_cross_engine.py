"""Integration: every engine agrees with the oracle on realistic workloads.

This is the heavyweight cross-validation pass — real dataset generators,
generated queries with mixed timing orders, every engine in the registry —
run at small scale so it stays fast.
"""

import random

import pytest

from repro import TimingMatcher
from repro.baselines.incmat import IncMatMatcher
from repro.baselines.naive import NaiveSnapshotMatcher
from repro.baselines.sjtree import SJTreeMatcher
from repro.isomorphism import QuickSI
from repro.datasets import (
    generate_lsbench_stream, generate_netflow_stream,
    generate_wikitalk_stream, generate_query_set, window_slice,
)


def engines_for(query, window):
    return {
        "Timing": TimingMatcher(query, window),
        "Timing-IND": TimingMatcher(query, window, use_mstree=False),
        "SJ-tree": SJTreeMatcher(query, window),
        "IncMat-QuickSI": IncMatMatcher(query, window, QuickSI()),
    }


GENERATORS = {
    "wikitalk": (generate_wikitalk_stream, {}, None),
    "lsbench": (generate_lsbench_stream, {}, None),
    "netflow": (generate_netflow_stream, {"num_ips": 40},
                lambda lbl: (__import__("repro").ANY, lbl[1], lbl[2])),
}


@pytest.mark.parametrize("dataset", sorted(GENERATORS))
def test_all_engines_agree_with_oracle(dataset):
    generator, kwargs, generalize = GENERATORS[dataset]
    stream = generator(500, seed=21, **kwargs)
    rng = random.Random(5)
    queries = generate_query_set(window_slice(stream, 150), sizes=[3],
                                 per_size=1, rng=rng,
                                 generalize_label=generalize)
    duration = stream.window_units_to_duration(150)
    edges = list(stream)[:350]
    for query in queries:
        oracle = NaiveSnapshotMatcher(query, duration)
        engines = engines_for(query, duration)
        for edge in edges:
            expected = set(oracle.push(edge))
            for name, engine in engines.items():
                got = set(engine.push(edge))
                assert got == expected, (dataset, name, edge)


def test_mixed_timing_orders_stress():
    """One graph, all five timing-order variants, longer stream, Timing vs
    oracle at every step including current-result parity."""
    stream = generate_wikitalk_stream(900, seed=33)
    rng = random.Random(6)
    queries = generate_query_set(window_slice(stream, 250), sizes=[4],
                                 per_size=1, rng=rng)
    duration = stream.window_units_to_duration(250)
    for query in queries:
        timing = TimingMatcher(query, duration)
        oracle = NaiveSnapshotMatcher(query, duration)
        for edge in list(stream)[:450]:
            assert set(timing.push(edge)) == set(oracle.push(edge))
        assert set(timing.current_matches()) == set(oracle.current_matches())
