"""CSV stream I/O: round-trips, laziness, format validation."""

import io

import pytest

from repro import StreamEdge
from repro.datasets import generate_netflow_stream
from repro.io.csv_stream import (
    StreamFormatError, read_stream, write_stream,
)


def sample_edges():
    return [
        StreamEdge("a", "b", src_label="A", dst_label="B", timestamp=1.5),
        StreamEdge("b", "c", src_label="B", dst_label="C", timestamp=2.25,
                   label="knows"),
        StreamEdge("a", "c", src_label="A", dst_label="C", timestamp=3.125,
                   label=(51234, 80, "tcp")),
    ]


class TestRoundTrip:
    def test_memory_roundtrip(self):
        buffer = io.StringIO()
        assert write_stream(sample_edges(), buffer) == 3
        buffer.seek(0)
        back = list(read_stream(buffer))
        for original, loaded in zip(sample_edges(), back):
            assert loaded.src == original.src
            assert loaded.dst == original.dst
            assert loaded.timestamp == original.timestamp
            assert loaded.label == original.label
            assert loaded.src_label == original.src_label

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "stream.csv")
        write_stream(sample_edges(), path)
        back = list(read_stream(path))
        assert len(back) == 3
        assert back[2].label == (51234, 80, "tcp")

    def test_netflow_roundtrip_preserves_five_tuples(self, tmp_path):
        path = str(tmp_path / "netflow.csv")
        stream = generate_netflow_stream(100, seed=3)
        write_stream(stream, path)
        back = list(read_stream(path))
        assert len(back) == 100
        assert all(isinstance(e.label, tuple) and len(e.label) == 3
                   for e in back)
        assert [e.timestamp for e in back] == \
            [e.timestamp for e in stream]


class TestValidation:
    def test_missing_columns_rejected(self):
        buffer = io.StringIO("src,dst\na,b\n")
        with pytest.raises(StreamFormatError, match="missing required"):
            list(read_stream(buffer))

    def test_bad_timestamp_rejected(self):
        buffer = io.StringIO(
            "src,dst,timestamp,src_label,dst_label,label\na,b,zzz,A,B,\n")
        with pytest.raises(StreamFormatError, match="bad timestamp"):
            list(read_stream(buffer))

    def test_non_monotone_rejected(self):
        buffer = io.StringIO(
            "src,dst,timestamp,src_label,dst_label,label\n"
            "a,b,2.0,A,B,\n"
            "b,c,1.0,B,C,\n")
        with pytest.raises(StreamFormatError, match="strictly increase"):
            list(read_stream(buffer))

    def test_monotone_check_can_be_disabled(self):
        buffer = io.StringIO(
            "src,dst,timestamp,src_label,dst_label,label\n"
            "a,b,2.0,A,B,\n"
            "b,c,1.0,B,C,\n")
        edges = list(read_stream(buffer, enforce_monotone=False))
        assert len(edges) == 2

    def test_reader_is_lazy(self):
        buffer = io.StringIO(
            "src,dst,timestamp,src_label,dst_label,label\n"
            "a,b,1.0,A,B,\n"
            "b,c,0.5,B,C,\n")          # invalid second row
        iterator = read_stream(buffer)
        first = next(iterator)          # fine — laziness means no error yet
        assert first.src == "a"
        with pytest.raises(StreamFormatError):
            next(iterator)
