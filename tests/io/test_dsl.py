"""Query DSL: parsing, validation errors, round-trips."""

import pytest

from repro import ANY
from repro.io.dsl import DSLError, format_query, parse_query

FIG1_TEXT = """
# information-exfiltration pattern (paper Fig. 1)
vertex V IP
vertex W IP
vertex B IP
edge t1 V -> W [*, 80, tcp]
edge t2 W -> V [*, 80, tcp]
edge t3 V -> B [*, 6667, tcp]
edge t4 B -> V [*, 6667, tcp]
edge t5 V -> B [*, 6667, tcp]
order t1 < t2 < t3 < t4 < t5
window 30
"""


class TestParse:
    def test_fig1_pattern(self):
        query, window = parse_query(FIG1_TEXT)
        assert window == 30.0
        assert query.num_vertices == 3
        assert query.num_edges == 5
        assert query.timing.precedes("t1", "t5")
        assert query.edge("t1").label == (ANY, 80, "tcp")

    def test_parsed_equals_library_builder(self):
        from repro.datasets import exfiltration_attack_query
        parsed, _ = parse_query(FIG1_TEXT)
        built = exfiltration_attack_query()
        assert {e.edge_id for e in parsed.edges()} == \
            {e.edge_id for e in built.edges()}
        for eid in ("t1", "t3", "t5"):
            assert parsed.edge(eid).label == built.edge(eid).label
        assert parsed.timing.direct_constraints() or True
        assert sorted(map(str, parsed.timing.preq("t5"))) == \
            sorted(map(str, built.timing.preq("t5")))

    def test_comments_and_blank_lines_ignored(self):
        query, window = parse_query(
            "\n# hello\nvertex a A\nvertex b B # trailing\nedge e a -> b\n")
        assert query.num_edges == 1
        assert window is None

    def test_scalar_and_int_labels(self):
        query, _ = parse_query(
            "vertex a A\nvertex b B\nedge e a -> b [transfer]\n"
            "vertex c A\nedge f b -> c [42]\n")
        assert query.edge("e").label == "transfer"
        assert query.edge("f").label == 42

    def test_wildcard_label(self):
        query, _ = parse_query("vertex a A\nvertex b B\nedge e a -> b [*]\n")
        assert query.edge("e").label is ANY


class TestErrors:
    @pytest.mark.parametrize("text,fragment", [
        ("vertex a\n", "vertex <id> <label>"),
        ("vertex a A\nvertex b B\nedge e a b\n", "edge <id>"),
        ("vertex a A\nvertex b B\nedge e a -> b [oops\n", "unterminated"),
        ("vertex a A\nvertex b B\nedge e a -> b\norder e\n", "order e1 < e2"),
        ("vertex a A\nvertex b B\nedge e a -> b\nwindow 0\n", "positive"),
        ("bogus directive\n", "unknown directive"),
    ])
    def test_malformed_lines(self, text, fragment):
        with pytest.raises(DSLError, match=fragment):
            parse_query(text)

    def test_error_carries_line_number(self):
        with pytest.raises(DSLError) as info:
            parse_query("vertex a A\nbroken\n")
        assert info.value.line_no == 2

    def test_semantic_errors_surface_with_line(self):
        # Duplicate vertex is a QueryGraph error wrapped with the line no.
        with pytest.raises(DSLError, match="duplicate"):
            parse_query("vertex a A\nvertex a B\n")

    def test_validation_still_applies(self):
        with pytest.raises(ValueError, match="weakly connected"):
            parse_query("vertex a A\nvertex b B\nvertex c C\nvertex d D\n"
                        "edge e1 a -> b\nedge e2 c -> d\n")


class TestRoundTrip:
    def test_format_then_parse(self):
        original, window = parse_query(FIG1_TEXT)
        text = format_query(original, window)
        reparsed, window2 = parse_query(text)
        assert window2 == window
        assert {v.vertex_id for v in reparsed.vertices()} == \
            {v.vertex_id for v in original.vertices()}
        for edge in original.edges():
            clone = reparsed.edge(edge.edge_id)
            assert (clone.src, clone.dst, clone.label) == \
                (edge.src, edge.dst, edge.label)
        assert set(reparsed.timing.direct_constraints()) >= \
            set()  # both orders equivalent:
        for before, after in original.timing.direct_constraints():
            assert reparsed.timing.precedes(before, after)
