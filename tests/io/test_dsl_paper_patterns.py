"""DSL round-trips for the paper's two motivating patterns + TSV streams."""

import io


from repro import TimingMatcher
from repro.io.csv_stream import read_stream, write_stream
from repro.io.dsl import format_query, parse_query

FRAUD = """\
vertex C account
vertex M account
vertex X account
vertex B bank
edge t1 C -> M [credit_pay]
edge t2 B -> M [real_payment]
edge t3 M -> X [transfer]
edge t4 X -> C [transfer]
order t1 < t2 < t3 < t4
window 5
"""


class TestFraudPattern:
    def test_parse_plan_and_run(self):
        query, window = parse_query(FRAUD)
        assert window == 5.0
        matcher = TimingMatcher(query, window)
        assert matcher.k == 1           # full chain over connected edges
        from repro.core.plan import explain
        assert explain(query).is_tc_query

    def test_roundtrip_preserves_scalar_labels(self):
        query, window = parse_query(FRAUD)
        text = format_query(query, window)
        reparsed, _ = parse_query(text)
        assert reparsed.edge("t1").label == "credit_pay"
        assert reparsed.timing.precedes("t1", "t4")

    def test_double_roundtrip_is_stable(self):
        query, window = parse_query(FRAUD)
        once = format_query(query, window)
        twice = format_query(*parse_query(once))
        assert once == twice


class TestTSV:
    def test_tab_delimited_roundtrip(self):
        from ..conftest import fig3_stream
        buffer = io.StringIO()
        write_stream(fig3_stream(), buffer, delimiter="\t")
        buffer.seek(0)
        back = list(read_stream(buffer, delimiter="\t"))
        assert len(back) == 10
        assert back[0].src == "e7"
        assert [e.timestamp for e in back] == \
            [e.timestamp for e in fig3_stream()]
