"""DSL label predicates: parsing, fuzzled round-trips, golden files.

PR 10's grammar extension — ``*`` (any), trailing-``*`` shorthand and
``prefix:`` spellings on vertex labels, edge labels and tuple components
— must parse to the predicate objects the router compiles
(:data:`~repro.core.query.ANY` / :class:`~repro.core.query.Prefix`),
reject malformed patterns with actionable line-numbered errors, and stay
stable under parse → format → parse for arbitrary predicate-bearing
queries (hypothesis-generated).  The committed golden ``.tq`` files under
``examples/queries/`` are parsed here so they cannot rot.
"""

import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ANY, Prefix
from repro.io.dsl import DSLError, format_query, parse_query

GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples" / "queries"


class TestPredicateParsing:
    def test_vertex_predicates(self):
        query, _ = parse_query(
            "vertex a srv*\nvertex b *\nvertex c prefix:db\n"
            "edge e a -> b\nedge f b -> c\n")
        assert query.vertex_label("a") == Prefix("srv")
        assert query.vertex_label("b") is ANY
        assert query.vertex_label("c") == Prefix("db")

    def test_edge_predicates_scalar_and_tuple(self):
        query, _ = parse_query(
            "vertex a A\nvertex b B\n"
            "edge e a -> b [44*]\n"
            "edge f b -> a [*, prefix:80, tcp]\n")
        assert query.edge("e").label == Prefix("44")
        assert query.edge("f").label == (ANY, Prefix("80"), "tcp")

    def test_shorthand_equals_explicit_spelling(self):
        short, _ = parse_query("vertex a A\nvertex b B\nedge e a -> b [44*]\n")
        explicit, _ = parse_query(
            "vertex a A\nvertex b B\nedge e a -> b [prefix:44]\n")
        assert short.edge("e").label == explicit.edge("e").label

    def test_vertex_literals_stay_raw_strings(self):
        # No int conversion on vertex labels — historical semantics.
        query, _ = parse_query(
            "vertex a 80\nvertex b B\nedge e a -> b [80]\n")
        assert query.vertex_label("a") == "80"
        assert query.edge("e").label == 80


class TestPredicateErrors:
    @pytest.mark.parametrize("token", ["4*4", "*44", "44**", "*4*"])
    def test_star_must_be_alone_or_trailing(self, token):
        with pytest.raises(DSLError, match="stand alone or end"):
            parse_query(f"vertex a A\nvertex b B\nedge e a -> b [{token}]\n")

    def test_empty_prefix_rejected(self):
        with pytest.raises(DSLError, match="non-empty prefix"):
            parse_query("vertex a A\nvertex b B\nedge e a -> b [prefix:]\n")

    def test_star_inside_prefix_spelling_rejected(self):
        with pytest.raises(DSLError, match="no '\\*'"):
            parse_query("vertex a A\nvertex b B\nedge e a -> b [prefix:4*]\n")

    def test_vertex_pattern_errors_carry_line_number(self):
        with pytest.raises(DSLError) as info:
            parse_query("vertex a A\nvertex b 4*4\nedge e a -> b\n")
        assert info.value.line_no == 2

    def test_tuple_component_errors_carry_line_number(self):
        with pytest.raises(DSLError) as info:
            parse_query("vertex a A\nvertex b B\n"
                        "edge e a -> b [tcp]\n"
                        "edge f b -> a [80, *4*, tcp]\n")
        assert info.value.line_no == 4


# ---------------------------------------------------------------------- #
# Fuzzled round-trips: parse(format(q)) preserves labels and structure,
# and format is a fixpoint after one round.
# ---------------------------------------------------------------------- #

#: Literal alphabets chosen so literals can never be re-read as
#: something else: vertex/string literals are non-numeric and contain
#: no '*' / 'prefix:' spelling, per the documented round-trip limits.
literal_strings = st.text(alphabet="abcz", min_size=1, max_size=4)
prefix_patterns = st.builds(
    Prefix, st.text(alphabet="abcz49", min_size=1, max_size=4))

vertex_labels = st.one_of(st.just(ANY), prefix_patterns, literal_strings)
components = st.one_of(
    st.just(ANY), prefix_patterns, literal_strings,
    st.integers(0, 9999))
edge_labels = st.one_of(
    components,
    st.lists(components, min_size=2, max_size=3).map(tuple))


@st.composite
def predicate_queries(draw):
    n_edges = draw(st.integers(1, 3))
    lines = []
    vlabels = {}
    for i in range(n_edges + 1):
        vlabels[f"v{i}"] = draw(vertex_labels)
    elabels = {f"e{i}": draw(edge_labels) for i in range(n_edges)}
    window = draw(st.one_of(st.none(), st.just(7.5)))
    from repro import QueryGraph
    q = QueryGraph()
    for vid, label in vlabels.items():
        q.add_vertex(vid, label)
    for i in range(n_edges):
        q.add_edge(f"e{i}", f"v{i}", f"v{i + 1}", elabels[f"e{i}"])
    if n_edges > 1:
        q.add_timing_chain(*[f"e{i}" for i in range(n_edges)])
    del lines
    return q, window


class TestRoundTripFuzz:
    @given(predicate_queries())
    @settings(max_examples=80, deadline=None)
    def test_parse_format_parse_stable(self, query_window):
        query, window = query_window
        text = format_query(query, window)
        reparsed, window2 = parse_query(text)
        assert window2 == window
        for vertex in query.vertices():
            assert reparsed.vertex_label(vertex.vertex_id) == vertex.label, \
                text
        for edge in query.edges():
            clone = reparsed.edge(edge.edge_id)
            assert (clone.src, clone.dst, clone.label) == \
                (edge.src, edge.dst, edge.label), text
        for before, after in query.timing.direct_constraints():
            assert reparsed.timing.precedes(before, after)
        # One round reaches the fixpoint: format ∘ parse ∘ format = format.
        assert format_query(reparsed, window2) == text

    @given(predicate_queries())
    @settings(max_examples=40, deadline=None)
    def test_routing_signatures_survive_round_trip(self, query_window):
        """The routing compiler sees identical atoms either side of the
        DSL — predicates are first-class values, not spellings."""
        query, window = query_window
        reparsed, _ = parse_query(format_query(query, window))
        assert reparsed.label_signatures() == query.label_signatures()


class TestGoldenFiles:
    def test_all_goldens_parse(self):
        paths = sorted(GOLDEN_DIR.glob("*.tq"))
        assert len(paths) >= 4        # beaconing, exfiltration + PR 10 pair
        for path in paths:
            query, window = parse_query(path.read_text())
            assert query.num_edges >= 1, path.name
            assert window is None or window > 0, path.name

    def test_ephemeral_ports_golden(self):
        query, window = parse_query(
            (GOLDEN_DIR / "ephemeral_ports.tq").read_text())
        assert window == 15.0
        assert query.edge("c1").label == (Prefix("44"), "tcp")
        assert query.edge("c2").label == (Prefix("44"), "tcp")
        assert query.timing.precedes("c1", "c2")

    def test_wildcard_fanout_golden(self):
        query, window = parse_query(
            (GOLDEN_DIR / "wildcard_fanout.tq").read_text())
        assert window == 10.0
        assert query.vertex_label("A") == Prefix("srv")
        assert query.vertex_label("B") is ANY
        assert query.edge("m1").label is ANY
        # Nothing here routes generically: all predicate entries.
        exact, predicates, generic = query.label_signatures()
        assert not generic
        assert predicates

    def test_goldens_round_trip(self):
        for path in sorted(GOLDEN_DIR.glob("*.tq")):
            query, window = parse_query(path.read_text())
            text = format_query(query, window)
            reparsed, window2 = parse_query(text)
            assert window2 == window, path.name
            assert format_query(reparsed, window2) == text, path.name
