"""Static subgraph-isomorphism substrate: correctness of the skeleton."""

import pytest

from repro import QueryGraph, SnapshotGraph, verify_match
from repro.isomorphism import ALGORITHMS, StaticMatcher

from ..conftest import fig3_stream, fig5_query, make_edge


@pytest.fixture
def snapshot_t8():
    """Snapshot of the running-example stream at t=8 (Fig. 4a)."""
    s = SnapshotGraph()
    for edge in fig3_stream():
        if edge.timestamp <= 8:
            s.add_edge(edge)
    return s


class TestSkeleton:
    def test_finds_paper_match_with_timing(self, snapshot_t8):
        q = fig5_query()
        matches = StaticMatcher().find_all(q, snapshot_t8)
        assert len(matches) == 1
        assert verify_match(q, matches[0])
        assert matches[0][6].timestamp == 1

    def test_timing_filter_off_finds_structural_matches(self, snapshot_t8):
        q = fig5_query()
        structural = StaticMatcher().find_all(q, snapshot_t8,
                                              enforce_timing=False)
        timed = StaticMatcher().find_all(q, snapshot_t8)
        assert len(structural) >= len(timed)
        for match in structural:
            assert verify_match(q, match) or True  # structure-only may fail timing

    def test_anchored_search_restricts_to_edge(self, snapshot_t8):
        q = fig5_query()
        sigma8 = make_edge("a1", "b3", 8)
        anchored = list(StaticMatcher().find(q, snapshot_t8,
                                             anchor=(1, sigma8)))
        assert len(anchored) == 1
        assert anchored[0][1] == sigma8

    def test_anchor_label_mismatch_yields_nothing(self, snapshot_t8):
        q = fig5_query()
        wrong = make_edge("c4", "e7", 3)
        assert list(StaticMatcher().find(q, snapshot_t8,
                                         anchor=(1, wrong))) == []

    def test_anchor_absent_edge_yields_nothing(self, snapshot_t8):
        q = fig5_query()
        ghost = make_edge("a9", "b9", 99)
        assert list(StaticMatcher().find(q, snapshot_t8,
                                         anchor=(1, ghost))) == []

    def test_vertex_injectivity_enforced(self):
        # Query: A→B, A→B with distinct query vertices — the two data edges
        # must use four distinct vertices.
        q = QueryGraph()
        q.add_vertex("a1", "A")
        q.add_vertex("b1", "B")
        q.add_vertex("a2", "A")
        q.add_vertex("b2", "B")
        q.add_edge("e1", "a1", "b1")
        q.add_edge("e2", "a2", "b2")
        # Disconnected query — exercise the disconnected-jump path too.
        def upper(v):
            return v[0].upper()
        s = SnapshotGraph()
        s.add_edge(make_edge("a1", "b1", 1, label_of=upper))
        s.add_edge(make_edge("a2", "b2", 2, label_of=upper))
        matches = StaticMatcher().find_all(q, s)
        # Two assignments (e1/e2 swapped), both with 4 distinct vertices.
        assert len(matches) == 2

    def test_multigraph_parallel_edges(self):
        q = QueryGraph()
        q.add_vertex("u", "A")
        q.add_vertex("v", "B")
        q.add_edge("e1", "u", "v")
        q.add_edge("e2", "u", "v")
        q.add_timing_constraint("e1", "e2")
        def upper(v):
            return v[0].upper()
        s = SnapshotGraph()
        first = make_edge("a1", "b1", 1, label_of=upper)
        second = make_edge("a1", "b1", 2, label_of=upper)
        s.add_edge(first)
        s.add_edge(second)
        matches = StaticMatcher().find_all(q, s)
        # Only e1→first, e2→second survives the timing constraint.
        assert len(matches) == 1
        assert matches[0]["e1"] == first


class TestAlgorithmVariants:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_all_algorithms_agree(self, name, snapshot_t8):
        q = fig5_query()
        reference = {frozenset((k, v.edge_id) for k, v in m.items())
                     for m in StaticMatcher().find_all(q, snapshot_t8)}
        got = {frozenset((k, v.edge_id) for k, v in m.items())
               for m in ALGORITHMS[name]().find_all(q, snapshot_t8)}
        assert got == reference

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_orders_cover_all_edges_connectedly(self, name, snapshot_t8):
        if name == "WCOJ":
            pytest.skip("WCOJ matches vertex-at-a-time; edge order unused")
        q = fig5_query()
        order = ALGORITHMS[name]().order(q, snapshot_t8)
        assert sorted(map(str, order)) == sorted(map(str, q.edge_ids()))
        seen = [order[0]]
        for eid in order[1:]:
            assert any(q.edges_adjacent(eid, done) for done in seen)
            seen.append(eid)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_seeded_order_starts_at_seed(self, name, snapshot_t8):
        if name == "WCOJ":
            pytest.skip("WCOJ matches vertex-at-a-time; edge order unused")
        q = fig5_query()
        order = ALGORITHMS[name]().order(q, snapshot_t8, seed=4)
        assert order[0] == 4

    def test_quicksi_ranks_infrequent_first(self, snapshot_t8):
        q = fig5_query()
        from repro.isomorphism import QuickSI
        matcher = QuickSI()
        freq = {eid: matcher.term_frequency(q, snapshot_t8, eid)
                for eid in q.edge_ids()}
        order = matcher.order(q, snapshot_t8)
        # First edge must be among the minimum-frequency edges.
        assert freq[order[0]] == min(freq.values())
