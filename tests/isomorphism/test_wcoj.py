"""WCOJ matcher: independent-implementation cross-validation.

The vertex-at-a-time matcher shares no code with the backtracking skeleton,
so agreement between the two on random inputs validates both.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import QueryGraph, SnapshotGraph
from repro.baselines.incmat import IncMatMatcher
from repro.baselines.naive import NaiveSnapshotMatcher
from repro.isomorphism import StaticMatcher, WCOJMatcher

from ..conftest import fig3_stream, fig5_query, make_edge
from ..core.test_engine_properties import (
    build_random_query, build_random_stream,
)


def canon(assignments):
    return {frozenset((k, v.edge_id) for k, v in m.items())
            for m in assignments}


@pytest.fixture
def snapshot_t8():
    s = SnapshotGraph()
    for edge in fig3_stream():
        if edge.timestamp <= 8:
            s.add_edge(edge)
    return s


class TestAgainstRunningExample:
    def test_finds_the_paper_match(self, snapshot_t8):
        q = fig5_query()
        matches = WCOJMatcher().find_all(q, snapshot_t8)
        assert len(matches) == 1
        assert matches[0][6].timestamp == 1

    def test_anchored(self, snapshot_t8):
        q = fig5_query()
        sigma8 = make_edge("a1", "b3", 8)
        anchored = list(WCOJMatcher().find(q, snapshot_t8,
                                           anchor=(1, sigma8)))
        assert len(anchored) == 1
        assert anchored[0][1] == sigma8

    def test_anchor_mismatch_empty(self, snapshot_t8):
        q = fig5_query()
        assert list(WCOJMatcher().find(
            q, snapshot_t8, anchor=(1, make_edge("c4", "e7", 3)))) == []


class TestMultigraphAndLoops:
    def test_parallel_edges_assigned_injectively(self):
        q = QueryGraph()
        q.add_vertex("u", "A")
        q.add_vertex("v", "B")
        q.add_edge("e1", "u", "v")
        q.add_edge("e2", "u", "v")
        def upper(x):
            return x[0].upper()
        s = SnapshotGraph()
        first = make_edge("a1", "b1", 1, label_of=upper)
        second = make_edge("a1", "b1", 2, label_of=upper)
        s.add_edge(first)
        s.add_edge(second)
        matches = WCOJMatcher().find_all(q, s, enforce_timing=False)
        assert len(matches) == 2               # both injective assignments
        for m in matches:
            assert m["e1"] != m["e2"]

    def test_self_loop(self):
        q = QueryGraph()
        q.add_vertex("u", "A")
        q.add_edge("loop", "u", "u")
        s = SnapshotGraph()
        def upper(x):
            return x[0].upper()
        s.add_edge(make_edge("a1", "a1", 1, label_of=upper))
        s.add_edge(make_edge("a1", "b1", 2, label_of=upper))
        matches = WCOJMatcher().find_all(q, s)
        assert len(matches) == 1


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_edges=st.integers(min_value=1, max_value=5),
       timing=st.booleans())
def test_property_agrees_with_backtracking(seed, n_edges, timing):
    rng = random.Random(seed)
    query = build_random_query(rng, n_edges)
    if not query.is_weakly_connected():
        return
    snapshot = SnapshotGraph()
    for edge in build_random_stream(rng, 40, 5):
        if edge not in snapshot:
            snapshot.add_edge(edge)
    reference = canon(StaticMatcher().find_all(
        query, snapshot, enforce_timing=timing))
    got = canon(WCOJMatcher().find_all(
        query, snapshot, enforce_timing=timing))
    assert got == reference


def test_wcoj_plugs_into_incmat():
    """WCOJ works as IncMat's inner algorithm, matching the oracle."""
    q = fig5_query()
    incmat = IncMatMatcher(q, 9.0, WCOJMatcher())
    oracle = NaiveSnapshotMatcher(q, 9.0)
    assert incmat.name == "IncMat-WCOJ"
    for edge in fig3_stream():
        assert set(incmat.push(edge)) == set(oracle.push(edge))
