"""Service-layer tests: gateway, queues, config, HTTP, tailers, CLI."""
