"""Shared builders for the service-layer tests."""

from __future__ import annotations

from typing import List

import pytest

from repro import StreamEdge
from repro.service import ServerConfig, TenantConfig

CHAIN_DSL = """
vertex a A
vertex b B
vertex c C
edge e1 a -> b
edge e2 b -> c
order e1 < e2
window 6
"""

#: The chain stream: 4 edges producing 3 matches of CHAIN_DSL.
CHAIN_ROWS = [("a1", "b1", 1.0, "A", "B"), ("b1", "c1", 2.0, "B", "C"),
              ("a2", "b1", 3.0, "A", "B"), ("b1", "c2", 4.0, "B", "C")]


def chain_edges() -> List[StreamEdge]:
    return [StreamEdge(src, dst, src_label=sl, dst_label=dl, timestamp=ts)
            for src, dst, ts, sl, dl in CHAIN_ROWS]


def chain_records() -> List[dict]:
    return [{"src": src, "dst": dst, "timestamp": ts,
             "src_label": sl, "dst_label": dl}
            for src, dst, ts, sl, dl in CHAIN_ROWS]


def chain_config(state_dir, **tenant_overrides) -> ServerConfig:
    """A one-tenant gateway config over CHAIN_DSL with no periodic
    checkpoints (tests trigger barriers explicitly)."""
    tenant = TenantConfig(name="t0", queries={"chain": CHAIN_DSL},
                          **tenant_overrides)
    return ServerConfig(state_dir=str(state_dir), port=0,
                        checkpoint_interval=0.0, tenants=(tenant,))


@pytest.fixture
def gateway(tmp_path):
    """A started in-process gateway (no HTTP listener), shut down after
    the test."""
    from repro.service import ServiceGateway
    gw = ServiceGateway(chain_config(tmp_path / "state"))
    yield gw
    gw.shutdown()
