"""Checkpoint-under-load: save_session races a concurrent pusher.

The satellite scenario: one thread pushes a stream through a
:class:`~repro.api.ThreadSafeSession` while another takes checkpoints
mid-flight.  Each checkpoint must land on an arrival boundary (the lock
guarantees it), record its exact stream position, and restoring it plus
replaying the remainder must reproduce the uninterrupted run — no
in-window edges or pending partial matches lost.
"""

import threading
import time

import pytest

from repro import Session, StreamEdge, ThreadSafeSession
from repro.persistence import load_session_meta
from repro.sinks import match_record

from .conftest import CHAIN_DSL


def long_chain_stream(n=120):
    """A stream that keeps producing overlapping chain matches so every
    checkpoint lands with partial matches pending in the window."""
    edges = []
    for i in range(n):
        t = float(i + 1)
        if i % 2 == 0:
            edges.append(StreamEdge(f"a{i}", f"b{i // 4}", src_label="A",
                                    dst_label="B", timestamp=t))
        else:
            edges.append(StreamEdge(f"b{i // 4}", f"c{i}", src_label="B",
                                    dst_label="C", timestamp=t))
    return edges


def fingerprint(session):
    """The session's current in-window match multiset, canonicalised."""
    import json
    return sorted(
        json.dumps(match_record("chain", match), sort_keys=True)
        for match in session.current_matches()["chain"])


class TestCheckpointUnderLoad:
    def test_concurrent_checkpoints_lose_nothing(self, tmp_path):
        edges = long_chain_stream()
        safe = ThreadSafeSession(Session())
        safe.register("chain", CHAIN_DSL)

        checkpoints = []
        done = threading.Event()

        def checkpointer():
            index = 0
            while not done.is_set() and index < 200:
                path = str(tmp_path / f"ckpt-{index}.pkl")
                meta = safe.checkpoint(path)
                checkpoints.append((path, meta))
                index += 1
                time.sleep(0.002)

        thread = threading.Thread(target=checkpointer)
        thread.start()
        for edge in edges:
            safe.push(edge)
        done.set()
        thread.join(10.0)
        assert not thread.is_alive()
        assert checkpoints, "no checkpoint completed during the run"

        # Position is always consistent: the meta's counter must match
        # the pickled session's own counter exactly.
        for path, meta in checkpoints:
            session, stored = load_session_meta(path)
            assert stored["edges_pushed"] == meta["edges_pushed"]
            assert session.edges_pushed == meta["edges_pushed"]

        # The reference: one uninterrupted run.
        reference = Session()
        reference.register("chain", CHAIN_DSL)
        reference.push_many(edges)
        expected = fingerprint(reference)
        assert expected, "workload produced no in-window matches"

        # Kill/restore from a mid-stream checkpoint (the latest one that
        # still has edges left to replay, else the last), replay the
        # tail, and compare the full in-window state.
        mid = next(((p, m) for p, m in reversed(checkpoints)
                    if m["edges_pushed"] < len(edges)), checkpoints[-1])
        path, meta = mid
        restored, stored = load_session_meta(path)
        assert stored["edges_pushed"] == restored.edges_pushed
        restored.push_many(edges[restored.edges_pushed:])
        assert restored.edges_pushed == len(edges)
        assert fingerprint(restored) == expected
        assert restored.result_counts() == reference.result_counts()

    def test_checkpoint_meta_records_clock(self, tmp_path):
        safe = ThreadSafeSession(Session())
        safe.register("chain", CHAIN_DSL)
        safe.push(StreamEdge("a0", "b0", src_label="A", dst_label="B",
                             timestamp=5.0))
        meta = safe.checkpoint(str(tmp_path / "c.pkl"),
                               meta={"custom": "tag"})
        assert meta["custom"] == "tag"
        assert meta["edges_pushed"] == 1
        assert meta["current_time"] == 5.0

    def test_locked_exposes_raw_session_atomically(self):
        safe = ThreadSafeSession(Session())
        safe.register("chain", CHAIN_DSL)
        with safe.locked() as session:
            assert isinstance(session, Session)
            assert session.names() == ["chain"]


class TestThreadSafePushers:
    def test_many_producers_one_session(self):
        """Concurrent push attempts serialise; the losers' stale
        timestamps raise exactly as they would single-threaded."""
        safe = ThreadSafeSession(Session())
        safe.register("chain", CHAIN_DSL)
        edges = long_chain_stream(60)
        errors = []

        def pusher(chunk):
            for edge in chunk:
                try:
                    safe.push(edge)
                except ValueError:
                    errors.append(edge)

        threads = [threading.Thread(target=pusher, args=(edges[i::3],))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        # Everything either landed or was rejected for timestamp order —
        # and the counters add up exactly.
        assert safe.edges_pushed + len(errors) == len(edges)
        assert safe.edges_pushed >= len(edges) // 3
