"""Edge/match JSON codec: round-trips, tuple labels, strict validation."""

import json

import pytest

from repro import StreamEdge
from repro.service import edge_from_json, edge_to_json
from repro.service.codec import CodecError


def roundtrip(edge):
    return edge_from_json(json.loads(json.dumps(edge_to_json(edge))))


class TestRoundTrip:
    def test_plain_edge(self):
        edge = StreamEdge("v1", "w1", src_label="V", dst_label="W",
                          timestamp=3.0)
        back = roundtrip(edge)
        assert back == edge
        assert back.src_label == "V" and back.timestamp == 3.0

    def test_tuple_label_round_trips_with_types(self):
        edge = StreamEdge("v1", "w1", src_label="IP", dst_label="IP",
                          timestamp=1.0, label=(51234, 80, "tcp"))
        back = roundtrip(edge)
        assert back.label == (51234, 80, "tcp")
        assert isinstance(back.label[0], int)

    def test_explicit_edge_id_round_trips(self):
        edge = StreamEdge("v1", "w1", src_label="V", dst_label="W",
                          timestamp=1.0, edge_id="flow-42")
        record = edge_to_json(edge)
        assert record["edge_id"] == "flow-42"
        assert roundtrip(edge).edge_id == "flow-42"

    def test_default_edge_id_is_omitted(self):
        edge = StreamEdge("v1", "w1", src_label="V", dst_label="W",
                          timestamp=1.0)
        record = edge_to_json(edge)
        assert "edge_id" not in record
        assert roundtrip(edge).edge_id == edge.edge_id

    def test_none_label_is_omitted(self):
        edge = StreamEdge("v1", "w1", src_label="V", dst_label="W",
                          timestamp=1.0)
        assert "label" not in edge_to_json(edge)


class TestDecodeValidation:
    def base(self, **extra):
        record = {"src": "v", "dst": "w", "src_label": "V",
                  "dst_label": "W", "timestamp": 1.0}
        record.update(extra)
        return record

    def test_not_an_object(self):
        with pytest.raises(CodecError, match="JSON object"):
            edge_from_json([1, 2, 3])

    def test_unknown_keys_rejected(self):
        with pytest.raises(CodecError, match="unknown edge keys"):
            edge_from_json(self.base(colour="red"))

    def test_missing_keys_rejected(self):
        with pytest.raises(CodecError, match="missing keys"):
            edge_from_json({"src": "v", "timestamp": 1.0})

    def test_missing_timestamp_without_default(self):
        record = self.base()
        del record["timestamp"]
        with pytest.raises(CodecError, match="no timestamp"):
            edge_from_json(record)

    def test_default_timestamp_backs_server_mode(self):
        record = self.base()
        del record["timestamp"]
        edge = edge_from_json(record, default_timestamp=17.0)
        assert edge.timestamp == 17.0

    def test_explicit_timestamp_wins_over_default(self):
        edge = edge_from_json(self.base(), default_timestamp=99.0)
        assert edge.timestamp == 1.0

    @pytest.mark.parametrize("bad", ["soon", True, None, [1]])
    def test_bad_timestamp_types(self, bad):
        with pytest.raises(CodecError, match="timestamp"):
            edge_from_json(self.base(timestamp=bad))

    def test_array_decodes_to_tuple(self):
        edge = edge_from_json(self.base(label=[6667, "tcp"]))
        assert edge.label == (6667, "tcp")
