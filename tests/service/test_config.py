"""Server config: TOML loading, strict validation, the fallback parser."""

import dataclasses

import pytest

from repro.service import (
    ConfigError, ServerConfig, TailConfig, TenantConfig, load_config,
)
from repro.service.config import parse_config, parse_toml_subset

from .conftest import CHAIN_DSL

SERVER_TOML = """\
# gateway deployment
[server]
host = "127.0.0.1"
port = 0
state_dir = "state"
checkpoint_interval = 5.0

[defaults]
window = 30.0
queue_capacity = 500
backpressure = "block"

[[tenant]]
name = "fraud"
window = 60.0
backpressure = "drop_oldest"

[[tenant.query]]
name = "chain"
text = '''
vertex a A
vertex b B
edge e1 a -> b
window 10
'''

[[tenant]]
name = "audit"

[[tenant.query]]
name = "from-file"
file = "audit.tq"

[[tenant.tail]]
path = "feed.jsonl"
poll_interval = 0.05
"""


@pytest.fixture
def config_dir(tmp_path):
    (tmp_path / "server.toml").write_text(SERVER_TOML)
    (tmp_path / "audit.tq").write_text(CHAIN_DSL)
    return tmp_path


class TestLoadConfig:
    def test_full_file_round_trip(self, config_dir):
        config = load_config(str(config_dir / "server.toml"))
        assert config.port == 0
        assert config.checkpoint_interval == 5.0
        assert config.state_dir == str(config_dir / "state")
        assert [t.name for t in config.tenants] == ["fraud", "audit"]
        fraud = config.tenant("fraud")
        assert fraud.window == 60.0            # tenant overrides default
        assert fraud.queue_capacity == 500     # default applies
        assert fraud.backpressure == "drop_oldest"
        assert "vertex a A" in fraud.queries["chain"]

    def test_query_files_resolve_relative_to_config(self, config_dir):
        config = load_config(str(config_dir / "server.toml"))
        assert "order e1 < e2" in config.tenant("audit").queries["from-file"]

    def test_tail_paths_resolve_relative_to_config(self, config_dir):
        config = load_config(str(config_dir / "server.toml"))
        (tail,) = config.tenant("audit").tails
        assert tail.path == str(config_dir / "feed.jsonl")
        assert tail.poll_interval == 0.05

    def test_missing_query_file_is_one_line_error(self, config_dir):
        (config_dir / "audit.tq").unlink()
        with pytest.raises(ConfigError, match="cannot read"):
            load_config(str(config_dir / "server.toml"))


class TestParseConfigValidation:
    def base(self):
        return {
            "server": {"state_dir": "s"},
            "tenant": [{"name": "t0",
                        "query": [{"name": "q", "text": CHAIN_DSL}]}],
        }

    def test_unknown_top_level_key(self):
        data = self.base()
        data["srever"] = {}
        with pytest.raises(ConfigError, match="unknown top-level keys"):
            parse_config(data)

    def test_unknown_server_key(self):
        data = self.base()
        data["server"]["prot"] = 80
        with pytest.raises(ConfigError, match=r"unknown \[server\] keys"):
            parse_config(data)

    def test_unknown_tenant_key(self):
        data = self.base()
        data["tenant"][0]["windw"] = 3
        with pytest.raises(ConfigError, match="unknown tenant keys"):
            parse_config(data)

    def test_query_needs_exactly_one_of_text_or_file(self):
        data = self.base()
        data["tenant"][0]["query"][0]["file"] = "also.tq"
        with pytest.raises(ConfigError, match="exactly one of"):
            parse_config(data)

    def test_no_tenants_rejected(self):
        with pytest.raises(ConfigError, match="no tenants"):
            parse_config({"server": {"state_dir": "s"}})

    def test_duplicate_tenant_names_rejected(self):
        data = self.base()
        data["tenant"].append(dict(data["tenant"][0]))
        with pytest.raises(ConfigError, match="duplicate tenant"):
            parse_config(data)

    def test_duplicate_query_names_rejected(self):
        data = self.base()
        data["tenant"][0]["query"].append(
            {"name": "q", "text": CHAIN_DSL})
        with pytest.raises(ConfigError, match="duplicate query"):
            parse_config(data)


class TestDataclassValidation:
    def tenant(self, **overrides):
        return TenantConfig(name="t0", queries={"q": CHAIN_DSL},
                            **overrides)

    def test_shards_without_sharding_rejected(self):
        with pytest.raises(ConfigError, match="sharding"):
            self.tenant(shards=4).validate()

    def test_sharded_tenant_accepted(self):
        self.tenant(shards=4, sharding="thread").validate()

    def test_bad_transport(self):
        with pytest.raises(ConfigError, match="transport"):
            self.tenant(transport="carrier-pigeon").validate()

    def test_transport_knob_accepted(self):
        tenant = self.tenant(shards=2, sharding="process",
                             transport="pipe").validate()
        assert tenant.transport == "pipe"

    def test_bad_backpressure(self):
        with pytest.raises(ConfigError, match="backpressure"):
            self.tenant(backpressure="best_effort").validate()

    def test_bad_timestamps_mode(self):
        with pytest.raises(ConfigError, match="timestamps"):
            self.tenant(timestamps="ntp").validate()

    def test_tenant_name_must_be_directory_safe(self):
        with pytest.raises(ConfigError, match="directory"):
            TenantConfig(name="a/b",
                         queries={"q": CHAIN_DSL}).validate()

    def test_queryless_tenant_rejected(self):
        with pytest.raises(ConfigError, match="no queries"):
            TenantConfig(name="t0").validate()

    def test_negative_checkpoint_interval_rejected(self):
        config = ServerConfig(state_dir="s", checkpoint_interval=-1.0,
                              tenants=(self.tenant(),))
        with pytest.raises(ConfigError, match="checkpoint_interval"):
            config.validate()

    def test_port_range(self):
        config = ServerConfig(state_dir="s", port=70000,
                              tenants=(self.tenant(),))
        with pytest.raises(ConfigError, match="port"):
            config.validate()

    def test_bad_tail_format(self):
        with pytest.raises(ConfigError, match="tail format"):
            TailConfig(path="f", format="xml").validate()


class TestFallbackTomlParser:
    """The 3.10 fallback must agree with tomllib on the schema subset."""

    def test_agrees_with_tomllib_when_available(self):
        tomllib = pytest.importorskip("tomllib")
        assert parse_toml_subset(SERVER_TOML) == tomllib.loads(SERVER_TOML)

    def test_tables_and_arrays_of_tables(self):
        data = parse_toml_subset(SERVER_TOML)
        assert data["server"]["port"] == 0
        assert isinstance(data["tenant"], list) and len(data["tenant"]) == 2
        assert data["tenant"][1]["tail"][0]["poll_interval"] == 0.05

    def test_multiline_string(self):
        data = parse_toml_subset(SERVER_TOML)
        text = data["tenant"][0]["query"][0]["text"]
        assert text.startswith("vertex a A")

    def test_scalars(self):
        data = parse_toml_subset(
            'a = 1\nb = 2.5\nc = true\nd = "x#y"  \n'
            "e = 'literal'\nf = [1, 2, 3]\ng = 7  # trailing comment\n")
        assert data == {"a": 1, "b": 2.5, "c": True, "d": "x#y",
                        "e": "literal", "f": [1, 2, 3], "g": 7}

    def test_bad_lines_rejected(self):
        with pytest.raises(ConfigError):
            parse_toml_subset("just words\n")
        with pytest.raises(ConfigError):
            parse_toml_subset("[unclosed\n")
        with pytest.raises(ConfigError):
            parse_toml_subset('x = """never closed\n')

    def test_fallback_drives_full_config(self, tmp_path):
        (tmp_path / "audit.tq").write_text(CHAIN_DSL)
        data = parse_toml_subset(SERVER_TOML)
        config = parse_config(data, base_dir=str(tmp_path))
        assert config.tenant("fraud").backpressure == "drop_oldest"


class TestOverrides:
    def test_dataclasses_replace_keeps_validation(self, config_dir):
        config = load_config(str(config_dir / "server.toml"))
        bumped = dataclasses.replace(config, port=9000)
        assert bumped.validate().port == 9000
