"""Gateway failure paths: poison edges, disk faults, rate limits,
client disconnects, tailer file churn, and supervised restarts.

Every test here drives a *failure* through the public surface and
asserts the containment contract: counters move, dead letters land,
health dips and recovers, and the process never wedges.
"""

import contextlib
import json
import os
import time
import urllib.error

import pytest

from repro import StreamEdge
from repro.service import (
    RateLimitConfig, ServerConfig, ServiceGateway, TenantConfig,
)
from repro.service.http import ServiceHTTPServer

from .conftest import CHAIN_DSL, chain_config, chain_records
from .test_http import _WSClient, get, post


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


@contextlib.contextmanager
def served(config):
    """A started gateway + HTTP listener, torn down afterwards."""
    gateway = ServiceGateway(config)
    server = ServiceHTTPServer(gateway).start_background()
    try:
        yield gateway, server.port
    finally:
        gateway.shutdown()
        server.stop()


def edge(src, dst, ts, src_label="A", dst_label="B"):
    return StreamEdge(src, dst, src_label=src_label, dst_label=dst_label,
                      timestamp=float(ts))


# --------------------------------------------------------------------- #
# Worker exceptions -> counters + dead letters (not silent drops)
# --------------------------------------------------------------------- #
class TestPoisonEdges:
    def test_poison_edge_is_dead_lettered_not_dropped(self, gateway):
        tenant = gateway.tenant("t0")
        session = tenant.safe.session
        original = session.ingest

        def flaky(edges):
            if any(e.src == "poison" for e in edges):
                raise RuntimeError("injected ingestion bug")
            return original(edges)

        session.ingest = flaky
        tenant.ingest_edges([edge("a1", "b1", 1.0),
                             edge("poison", "b1", 2.0)])
        assert wait_for(lambda: tenant.dead_letters.recorded == 1)
        (letter,) = tenant.dead_letters.read_all()
        assert letter["reason"] == "poison_edge"
        assert letter["payload"]["src"] == "poison"
        assert "injected ingestion bug" in letter["error"]
        # The batch error and the isolated poison both count.
        assert tenant.worker_errors == 2
        # The good edge survived its batch; the cursor moved past the
        # poison so recovery will not resend it forever.
        assert wait_for(lambda: tenant.edges_offered == 2)
        assert tenant.safe.edges_pushed == 1
        # The worker is still alive and ingesting.
        tenant.ingest_edges([edge("a2", "b2", 3.0)])
        assert wait_for(lambda: tenant.safe.edges_pushed == 2)
        assert tenant.health.state == "healthy"

    def test_poison_edge_advances_tail_offsets(self, gateway):
        tenant = gateway.tenant("t0")
        tenant.safe.session.ingest = lambda edges: (_ for _ in ()).throw(
            RuntimeError("always poison"))
        tenant.ingest_edges([edge("p1", "q1", 1.0)],
                            offset=("feed.jsonl", 77))
        assert wait_for(lambda: tenant.dead_letters.recorded == 1)
        assert tenant.source_offsets == {"feed.jsonl": 77}


# --------------------------------------------------------------------- #
# Checkpoint during disk-full (injected OSError)
# --------------------------------------------------------------------- #
class TestCheckpointDiskFull:
    def config(self, state_dir):
        # Three io_errors: exactly enough to defeat the checkpoint's
        # 3-attempt retry ladder once, after which the disk "recovers".
        tenant = TenantConfig(name="t0", queries={"chain": CHAIN_DSL})
        return ServerConfig(
            state_dir=str(state_dir), port=0, checkpoint_interval=0.0,
            tenants=(tenant,),
            faults={"inject": [{"site": "checkpoint.write",
                                "kind": "io_error", "every": 1,
                                "limit": 3}]})

    def test_http_checkpoint_survives_disk_full(self, tmp_path):
        with served(self.config(tmp_path / "state")) as (gateway, port):
            post(port, "/ingest", {"edges": chain_records()})
            assert gateway.wait_idle(10)
            tenant = gateway.tenant("t0")
            # First barrier: every write attempt fails; the endpoint
            # still answers (the failure is per-tenant, not fatal).
            status, reply = post(port, "/checkpoint", {})
            assert status == 200 and reply["checkpoints"] == {}
            assert tenant.checkpoint_failures == 1
            assert tenant.checkpoints_written == 0
            assert not os.path.exists(tenant.checkpoint_path)
            # Disk recovered (fault limit spent): the next barrier lands.
            status, reply = post(port, "/checkpoint", {})
            assert reply["checkpoints"]["t0"]["edges_offered"] == 4
            assert tenant.checkpoints_written == 1
            assert os.path.exists(tenant.checkpoint_path)
            assert tenant.health.state == "healthy"

    def test_persistent_checkpoint_failure_trips_breaker(self, tmp_path):
        tenant_config = TenantConfig(name="t0",
                                     queries={"chain": CHAIN_DSL})
        config = ServerConfig(
            state_dir=str(tmp_path / "state"), port=0,
            checkpoint_interval=0.0, tenants=(tenant_config,),
            faults={"inject": [{"site": "checkpoint.write",
                                "kind": "io_error", "every": 1}]})
        gateway = ServiceGateway(config)
        try:
            tenant = gateway.tenant("t0")
            for _ in range(5):      # breaker threshold
                with pytest.raises(OSError):
                    tenant.checkpoint()
            assert tenant.checkpoint_breaker.state == "open"
            assert tenant.health.state == "degraded"
            assert "checkpoints failing" in tenant.health.reason
        finally:
            gateway.abort()


# --------------------------------------------------------------------- #
# Rate limiting: HTTP 429 + Retry-After, WebSocket backoff frames
# --------------------------------------------------------------------- #
class TestRateLimiting:
    def config(self, state_dir):
        return chain_config(state_dir,
                            rate_limit=RateLimitConfig(rps=50.0, burst=4))

    def test_http_429_with_retry_after(self, tmp_path):
        with served(self.config(tmp_path / "state")) as (gateway, port):
            status, reply = post(port, "/ingest",
                                 {"edges": chain_records()})
            assert status == 200 and reply["accepted"] == 4
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(port, "/ingest", {"edges": chain_records()})
            error = excinfo.value
            assert error.code == 429
            retry_after = float(error.headers["Retry-After"])
            assert retry_after > 0
            body = json.loads(error.read())
            assert body["error"] == "rate limit exceeded"
            assert body["retry_after"] == pytest.approx(retry_after,
                                                        abs=0.01)
            # Rejection is all-or-nothing: nothing was admitted, so the
            # same batch can be resent verbatim after the wait.
            tenant = gateway.tenant("t0")
            assert tenant.queue.enqueued == 4
            assert tenant.rate_limiter.limited == 4
            time.sleep(retry_after + 0.05)
            status, reply = post(port, "/ingest",
                                 {"edges": chain_records()})
            assert status == 200 and reply["accepted"] == 4

    def test_websocket_backoff_frame(self, tmp_path):
        with served(self.config(tmp_path / "state")) as (_gateway, port):
            client = _WSClient(port, "/tenants/t0/ingest")
            client.send_text(json.dumps({"edges": chain_records()}))
            _opcode, payload = client.recv_frame()
            assert json.loads(payload)["accepted"] == 4
            client.send_text(json.dumps({"edges": chain_records()}))
            _opcode, payload = client.recv_frame()
            reply = json.loads(payload)
            assert reply["backoff"] is True and reply["retry_after"] > 0
            client.close()

    def test_counters_exported(self, tmp_path):
        with served(self.config(tmp_path / "state")) as (_gateway, port):
            post(port, "/ingest", {"edges": chain_records()})
            _status, text = get(port, "/metrics")
            assert 'repro_rate_limit_admitted{tenant="t0"} 4' in text


# --------------------------------------------------------------------- #
# Client disconnect mid-ack
# --------------------------------------------------------------------- #
class TestWSDisconnect:
    def test_abrupt_disconnect_mid_ack_does_not_wedge(self, tmp_path):
        with served(chain_config(tmp_path / "state")) as (gateway, port):
            client = _WSClient(port, "/tenants/t0/ingest")
            client.send_text(json.dumps({"edges": chain_records()}))
            # Vanish without a close frame, before reading the ack: the
            # server's ack write hits a dead socket.
            client.sock.close()
            assert gateway.wait_idle(10)
            tenant = gateway.tenant("t0")
            assert wait_for(lambda: tenant.matches_delivered == 3)
            # The listener survived: plain HTTP and a fresh WebSocket
            # both still work.
            status, _body = get(port, "/stats")
            assert status == 200
            replacement = _WSClient(port, "/tenants/t0/ingest")
            replacement.send_text(json.dumps(chain_records()[:1]))
            _opcode, payload = replacement.recv_frame()
            assert json.loads(payload)["accepted"] == 1
            replacement.close()

    def test_stream_subscriber_disconnect_unsubscribes(self, tmp_path):
        with served(chain_config(tmp_path / "state")) as (gateway, port):
            client = _WSClient(port, "/tenants/t0/stream")
            hub = gateway.tenant("t0").hub
            assert wait_for(lambda: hub.subscriber_count() == 1)
            client.sock.close()     # no close frame
            assert wait_for(lambda: hub.subscriber_count() == 0)
            post(port, "/ingest", {"edges": chain_records()})
            assert gateway.wait_idle(10)


# --------------------------------------------------------------------- #
# Tailer: truncation, rotation, injected read errors
# --------------------------------------------------------------------- #
class TestTailerFileChurn:
    def config(self, state_dir, feed, faults=None):
        from repro.service import TailConfig
        tenant = TenantConfig(
            name="t0", queries={"chain": CHAIN_DSL},
            tails=(TailConfig(path=str(feed), poll_interval=0.02),))
        return ServerConfig(state_dir=str(state_dir), port=0,
                            checkpoint_interval=0.0, tenants=(tenant,),
                            faults=faults)

    @staticmethod
    def write(path, records, mode="w"):
        with open(path, mode, encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")

    def test_truncation_reopens_and_counts(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        records = chain_records()
        self.write(feed, records[:2])
        gateway = ServiceGateway(self.config(tmp_path / "state", feed))
        gateway.start_tailers()
        try:
            tenant = gateway.tenant("t0")
            assert wait_for(lambda: tenant.safe.edges_pushed == 2)
            # The file shrinks under the tailer (a writer restarted it).
            self.write(feed, [dict(records[2], timestamp=3.0)])
            assert wait_for(lambda: tenant.safe.edges_pushed == 3)
            (tailer,) = gateway._tailers
            assert tailer.truncations >= 1
            assert tailer.status()["truncations"] == tailer.truncations
        finally:
            gateway.shutdown()

    def test_rotation_follows_the_new_inode(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        records = chain_records()
        self.write(feed, records[:2])
        gateway = ServiceGateway(self.config(tmp_path / "state", feed))
        gateway.start_tailers()
        try:
            tenant = gateway.tenant("t0")
            assert wait_for(lambda: tenant.safe.edges_pushed == 2)
            # Classic logrotate: a new file replaces the path.  Three
            # fresh records keep the new file larger than the consumed
            # offset, so only the inode check can notice the swap.
            replacement = tmp_path / "feed.jsonl.new"
            self.write(replacement, [
                dict(records[2], timestamp=3.0),
                dict(records[3], timestamp=4.0),
                dict(records[2], src="a9", timestamp=5.0)])
            os.replace(replacement, feed)
            assert wait_for(lambda: tenant.safe.edges_pushed == 5)
            (tailer,) = gateway._tailers
            assert tailer.rotations >= 1
        finally:
            gateway.shutdown()

    def test_injected_read_error_backs_off_and_resumes(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        self.write(feed, chain_records())
        faults = {"inject": [{"site": "tailer.read", "kind": "io_error",
                              "at": 2, "limit": 1}]}
        gateway = ServiceGateway(
            self.config(tmp_path / "state", feed, faults=faults))
        gateway.start_tailers()
        try:
            tenant = gateway.tenant("t0")
            # The second read dies; the tailer reopens at its resume
            # offset and consumes everything exactly once.
            assert wait_for(lambda: tenant.safe.edges_pushed == 4)
            assert wait_for(lambda: tenant.matches_delivered == 3)
            (tailer,) = gateway._tailers
            assert tailer.read_errors == 1
            assert tenant.rejected_nonmonotonic == 0
        finally:
            gateway.shutdown()


# --------------------------------------------------------------------- #
# Supervised restart from the last checkpoint (shard death)
# --------------------------------------------------------------------- #
class TestSupervisedRestart:
    def test_shard_death_restarts_tenant_from_checkpoint(self, tmp_path):
        config = chain_config(tmp_path / "state", sharding="process",
                              shards=2, max_restarts=3)
        gateway = ServiceGateway(config)
        try:
            tenant = gateway.tenant("t0")
            tenant.ingest_json(chain_records())
            assert gateway.wait_idle(15)
            assert tenant.matches_delivered == 3
            tenant.checkpoint()

            # Hard-kill every shard worker.
            session = tenant.safe.session
            for shard in session._shards:
                shard.handle.process.kill()
            assert wait_for(lambda: not any(
                shard.handle.process.is_alive()
                for shard in session._shards))

            # The next batch hits the dead shards; the supervisor must
            # rebuild the session from the barrier.
            tenant.ingest_edges([edge("b1", "c9", 5.0,
                                      src_label="B", dst_label="C")])
            assert wait_for(lambda: tenant.restarts == 1, timeout=30.0)
            assert wait_for(lambda: tenant.health.state == "healthy",
                            timeout=30.0)
            arc = [entry["state"] for entry in tenant.health.history()]
            assert "degraded" in arc and "recovering" in arc
            assert arc[-1] == "healthy"
            # Restored at the checkpointed position; the producer
            # replays from there (the trigger batch was past the
            # barrier, so it re-sends).
            assert tenant.edges_offered == 4
            # Replaying the lost edge completes both chains pending at
            # b1 (a1@1 and a2@3 are still in the 6-second window).
            tenant.ingest_edges([edge("b1", "c9", 5.0,
                                      src_label="B", dst_label="C")])
            assert wait_for(lambda: tenant.matches_delivered == 5,
                            timeout=30.0)
            assert tenant.restart_budget.counters()["granted"] == 1
        finally:
            gateway.shutdown()

    def test_exhausted_budget_degrades_instead_of_crash_looping(self):
        # Unit-level: the supervisor path with a zero budget marks the
        # tenant degraded and reports False, no restart attempted.
        import types

        from repro.service.gateway import Tenant
        tenant = types.SimpleNamespace()
        from repro.service.resilience import HealthTracker, RestartBudget
        tenant.restart_budget = RestartBudget(0)
        tenant.health = HealthTracker()
        result = Tenant._restart_from_checkpoint(
            tenant, RuntimeError("shard died"))
        assert result is False
        assert tenant.health.state == "degraded"
        assert "restart budget exhausted" in tenant.health.reason
