"""ServiceGateway: ingestion, counters, checkpoints, crash recovery."""

import json
import os

import pytest

from repro.service import ServiceGateway, render_metrics
from repro.service.gateway import MatchHub

from .conftest import chain_config, chain_edges, chain_records


def read_match_log(state_dir, tenant="t0"):
    """Every match record across the tenant's segments, as a sorted
    multiset of canonical JSON lines."""
    match_dir = os.path.join(str(state_dir), tenant, "matches")
    lines = []
    for name in sorted(os.listdir(match_dir)):
        with open(os.path.join(match_dir, name), encoding="utf-8") as fh:
            lines.extend(line.strip() for line in fh if line.strip())
    return sorted(lines)


class TestIngestion:
    def test_edges_flow_to_matches(self, gateway):
        tenant = gateway.tenant("t0")
        tenant.ingest_edges(chain_edges())
        assert gateway.wait_idle(10)
        assert tenant.matches_delivered == 3
        assert tenant.safe.edges_pushed == 4
        assert tenant.edges_offered == 4

    def test_json_ingestion_counts_invalid(self, gateway):
        tenant = gateway.tenant("t0")
        records = chain_records() + [{"nope": 1}, "not-an-object"]
        result = tenant.ingest_json(records)
        assert result == {"accepted": 4, "invalid": 2, "position": 4}
        assert gateway.wait_idle(10)
        assert tenant.matches_delivered == 3

    def test_nonmonotonic_arrivals_are_counted_not_fatal(self, gateway):
        tenant = gateway.tenant("t0")
        edges = chain_edges()
        tenant.ingest_edges(edges)
        assert gateway.wait_idle(10)
        tenant.ingest_edges(edges[:2])      # stale timestamps
        assert gateway.wait_idle(10)
        assert tenant.rejected_nonmonotonic == 2
        assert tenant.safe.edges_pushed == 4
        assert tenant.worker_errors == 0

    def test_server_timestamp_mode(self, tmp_path):
        config = chain_config(tmp_path / "state", timestamps="server")
        with ServiceGateway(config) as gateway:
            tenant = gateway.tenant("t0")
            records = [dict(r) for r in chain_records()]
            for record in records:
                del record["timestamp"]
            result = tenant.ingest_json(records)
            assert result["accepted"] == 4
            assert gateway.wait_idle(10)
            assert tenant.safe.current_time == 4.0
            # client timestamps are rejected outright in server mode
            result = tenant.ingest_json(chain_records()[:1])
            assert result == {"accepted": 0, "invalid": 1, "position": 4}

    def test_status_snapshot_shape(self, gateway):
        gateway.tenant("t0").ingest_edges(chain_edges())
        assert gateway.wait_idle(10)
        status = gateway.status()
        t0 = status["tenants"]["t0"]
        assert t0["queries"] == ["chain"]
        assert t0["queue"]["enqueued"] == 4
        assert json.dumps(status)          # JSON-able end to end


class TestCheckpointRecovery:
    def test_checkpoint_and_restore_on_boot(self, tmp_path):
        config = chain_config(tmp_path / "state")
        with ServiceGateway(config) as gateway:
            tenant = gateway.tenant("t0")
            tenant.ingest_edges(chain_edges())
            assert gateway.wait_idle(10)
            meta = tenant.checkpoint()
        assert meta["edges_offered"] == 4 and meta["sealed_segment"] == 0
        with ServiceGateway(config) as restored:
            tenant = restored.tenant("t0")
            assert tenant.restored
            assert tenant.edges_offered == 4
            assert tenant.safe.edges_pushed == 4
            assert tenant.safe.current_time == 4.0

    def test_graceful_shutdown_writes_final_checkpoint(self, tmp_path):
        config = chain_config(tmp_path / "state")
        gateway = ServiceGateway(config)
        gateway.tenant("t0").ingest_edges(chain_edges())
        gateway.shutdown()
        assert os.path.exists(
            os.path.join(str(tmp_path / "state"), "t0", "checkpoint.pkl"))
        with ServiceGateway(config) as restored:
            assert restored.tenant("t0").safe.edges_pushed == 4

    def test_shutdown_drains_pending_queue(self, tmp_path):
        config = chain_config(tmp_path / "state", batch_size=1)
        gateway = ServiceGateway(config)
        gateway.tenant("t0").ingest_edges(chain_edges())
        gateway.shutdown()      # no wait_idle: shutdown itself must drain
        with ServiceGateway(config) as restored:
            assert restored.tenant("t0").safe.edges_pushed == 4
            assert restored.tenant("t0").matches_delivered == 0

    def test_config_drift_registers_new_queries(self, tmp_path):
        config = chain_config(tmp_path / "state")
        with ServiceGateway(config) as gateway:
            gateway.tenant("t0").ingest_edges(chain_edges())
            assert gateway.wait_idle(10)
        from .conftest import CHAIN_DSL
        import dataclasses
        tenant_config = dataclasses.replace(
            config.tenants[0],
            queries={"chain": CHAIN_DSL, "chain2": CHAIN_DSL})
        config = dataclasses.replace(config, tenants=(tenant_config,))
        with ServiceGateway(config) as restored:
            assert sorted(restored.tenant("t0").safe.names()) == [
                "chain", "chain2"]

    def test_kill_restore_matches_uninterrupted_run(self, tmp_path):
        """The acceptance property: crash after a checkpoint + replay
        from the recorded position delivers exactly the uninterrupted
        run's match multiset."""
        edges = chain_edges()

        # Uninterrupted reference run.
        ref_dir = tmp_path / "ref"
        with ServiceGateway(chain_config(ref_dir)) as gateway:
            gateway.tenant("t0").ingest_edges(edges)
            assert gateway.wait_idle(10)
            gateway.tenant("t0").checkpoint()
        reference = read_match_log(ref_dir)
        assert len(reference) == 3

        # Crashed run: checkpoint mid-stream, keep ingesting, kill.
        crash_dir = tmp_path / "crash"
        config = chain_config(crash_dir)
        gateway = ServiceGateway(config)
        tenant = gateway.tenant("t0")
        tenant.ingest_edges(edges[:2])
        assert gateway.wait_idle(10)
        meta = tenant.checkpoint()
        assert meta["edges_offered"] == 2
        tenant.ingest_edges(edges[2:])
        assert gateway.wait_idle(10)
        assert tenant.matches_delivered == 3    # uncommitted tail exists
        gateway.abort()                          # SIGKILL equivalent

        # Recovery: uncommitted segments discarded, replay from the
        # checkpointed position.
        with ServiceGateway(config) as restored:
            tenant = restored.tenant("t0")
            assert tenant.restored and tenant.edges_offered == 2
            tenant.ingest_edges(edges[tenant.edges_offered:])
            assert restored.wait_idle(10)
            restored.tenant("t0").checkpoint()
        assert read_match_log(crash_dir) == reference


class TestMatchHub:
    def test_subscribers_receive_records(self, gateway):
        got = []
        gateway.tenant("t0").hub.subscribe(got.append)
        gateway.tenant("t0").ingest_edges(chain_edges())
        assert gateway.wait_idle(10)
        assert len(got) == 3
        assert all(record["query"] == "chain" for record in got)

    def test_failing_subscriber_is_dropped_not_fatal(self, gateway):
        def broken(record):
            raise RuntimeError("boom")

        hub = gateway.tenant("t0").hub
        hub.subscribe(broken)
        gateway.tenant("t0").ingest_edges(chain_edges())
        assert gateway.wait_idle(10)
        assert gateway.tenant("t0").matches_delivered == 3
        assert hub.subscriber_count() == 0

    def test_unsubscribe(self):
        hub = MatchHub()
        records = []
        callback = records.append
        hub.subscribe(callback)
        assert hub.subscriber_count() == 1
        hub.unsubscribe(callback)
        hub.publish({"query": "q"})
        assert records == [] and hub.subscriber_count() == 0


class TestMetricsRendering:
    def test_prometheus_text(self, gateway):
        tenant = gateway.tenant("t0")
        tenant.ingest_edges(chain_edges())
        assert gateway.wait_idle(10)
        stats = {"t0": tenant.safe.session_stats()}
        text = render_metrics(gateway.status(), stats)
        assert 'repro_matches_delivered{tenant="t0"} 3' in text
        assert 'repro_queue_enqueued{tenant="t0"} 4' in text
        assert 'repro_session_edges_pushed{tenant="t0"} 4' in text
        assert '# TYPE repro_matches_delivered counter' in text
        assert 'repro_tenant_info{' in text
        assert 'routing="shared"' in text
        assert text.endswith("\n")

    def test_every_numeric_session_stat_is_exported(self, gateway):
        tenant = gateway.tenant("t0")
        stats = tenant.safe.session_stats()
        text = render_metrics(gateway.status(), {"t0": stats})
        for key, value in stats.items():
            if isinstance(value, bool) or not isinstance(
                    value, (int, float)):
                continue
            assert f"repro_session_{key}{{" in text


class TestMultiTenant:
    def test_two_isolated_tenants(self, tmp_path):
        import dataclasses
        config = chain_config(tmp_path / "state")
        second = dataclasses.replace(config.tenants[0], name="t1")
        config = dataclasses.replace(
            config, tenants=config.tenants + (second,))
        with ServiceGateway(config) as gateway:
            gateway.tenant("t0").ingest_edges(chain_edges())
            assert gateway.wait_idle(10)
            assert gateway.tenant("t0").matches_delivered == 3
            assert gateway.tenant("t1").matches_delivered == 0
            with pytest.raises(ValueError, match="several tenants"):
                gateway.default_tenant()
