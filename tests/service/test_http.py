"""The HTTP/WebSocket front door against a live in-process gateway."""

import base64
import hashlib
import json
import os
import socket
import struct
import time
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceGateway
from repro.service.http import ServiceHTTPServer, _parse_edge_body

from .conftest import chain_config, chain_records

WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


@pytest.fixture
def served(tmp_path):
    """(gateway, port) with the HTTP listener running on port 0."""
    gateway = ServiceGateway(chain_config(tmp_path / "state"))
    server = ServiceHTTPServer(gateway).start_background()
    yield gateway, server.port
    gateway.shutdown()
    server.stop()


def get(port, path):
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10) as resp:
        return resp.status, resp.read().decode()


def post(port, path, payload):
    data = payload if isinstance(payload, bytes) \
        else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


class TestHTTPEndpoints:
    def test_healthz(self, served):
        _gateway, port = served
        status, body = get(port, "/healthz")
        health = json.loads(body)
        assert status == 200 and health["ok"] is True
        assert health["tenants"]["t0"]["state"] == "healthy"

    def test_ingest_and_stats(self, served):
        gateway, port = served
        status, reply = post(port, "/ingest",
                             {"edges": chain_records()})
        assert status == 200
        assert reply == {"accepted": 4, "invalid": 0, "position": 4}
        assert gateway.wait_idle(10)
        status, body = get(port, "/stats")
        stats = json.loads(body)
        assert stats["tenants"]["t0"]["matches_delivered"] == 3

    def test_ingest_named_tenant_route(self, served):
        gateway, port = served
        status, reply = post(port, "/tenants/t0/ingest",
                             chain_records())      # bare array form
        assert status == 200 and reply["accepted"] == 4

    def test_ingest_single_object_form(self, served):
        _gateway, port = served
        status, reply = post(port, "/ingest", chain_records()[0])
        assert status == 200 and reply["accepted"] == 1

    def test_unknown_tenant_404(self, served):
        _gateway, port = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(port, "/tenants/nope/ingest", chain_records())
        assert excinfo.value.code == 404

    def test_bad_body_400(self, served):
        _gateway, port = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(port, "/ingest", b"not json {")
        assert excinfo.value.code == 400

    def test_unknown_route_404(self, served):
        _gateway, port = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(port, "/nothing/here")
        assert excinfo.value.code == 404

    def test_metrics_scrape(self, served):
        gateway, port = served
        post(port, "/ingest", {"edges": chain_records()})
        assert gateway.wait_idle(10)
        status, text = get(port, "/metrics")
        assert status == 200
        assert 'repro_matches_delivered{tenant="t0"} 3' in text
        assert 'repro_queue_depth{tenant="t0"} 0' in text
        assert "repro_uptime_seconds" in text

    def test_checkpoint_trigger(self, served, tmp_path):
        gateway, port = served
        post(port, "/ingest", {"edges": chain_records()})
        assert gateway.wait_idle(10)
        status, reply = post(port, "/checkpoint", {})
        assert status == 200
        assert reply["checkpoints"]["t0"]["edges_offered"] == 4
        assert os.path.exists(gateway.tenant("t0").checkpoint_path)

    def test_port_zero_publishes_bound_port(self, served):
        _gateway, port = served
        assert isinstance(port, int) and port > 0


class TestParseEdgeBody:
    def test_shapes(self):
        record = {"src": "a"}
        assert _parse_edge_body(json.dumps(record).encode()) \
            == ([record], None, False)
        assert _parse_edge_body(json.dumps([record]).encode()) \
            == ([record], None, False)
        assert _parse_edge_body(
            json.dumps({"edges": [record]}).encode()) \
            == ([record], None, False)
        assert _parse_edge_body(b"42") is None
        assert _parse_edge_body(b"nope") is None

    def test_envelope_carries_request_metadata(self):
        record = {"src": "a"}
        body = json.dumps({"edges": [record], "request_id": "r-1",
                           "dlq_replay": True}).encode()
        assert _parse_edge_body(body) == ([record], "r-1", True)
        # A bare array cannot carry a request id.
        assert _parse_edge_body(json.dumps([record]).encode())[1] is None


class _WSClient:
    """A tiny blocking RFC 6455 client for tests."""

    def __init__(self, port, path):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=10)
        key = base64.b64encode(os.urandom(16)).decode()
        self.sock.sendall((
            f"GET {path} HTTP/1.1\r\nHost: localhost\r\n"
            "Upgrade: websocket\r\nConnection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n\r\n").encode())
        response = b""
        while b"\r\n\r\n" not in response:
            response += self.sock.recv(1024)
        status_line = response.split(b"\r\n", 1)[0]
        assert b"101" in status_line, response
        expected = base64.b64encode(hashlib.sha1(
            (key + WS_GUID).encode()).digest())
        assert expected in response

    def send_text(self, text: str) -> None:
        payload = text.encode()
        mask = os.urandom(4)
        masked = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
        head = b"\x81"
        length = len(payload)
        if length < 126:
            head += bytes([0x80 | length])
        else:
            head += bytes([0x80 | 126]) + struct.pack(">H", length)
        self.sock.sendall(head + mask + masked)

    def recv_frame(self):
        head = self._exactly(2)
        opcode = head[0] & 0x0F
        length = head[1] & 0x7F
        if length == 126:
            length = struct.unpack(">H", self._exactly(2))[0]
        elif length == 127:
            length = struct.unpack(">Q", self._exactly(8))[0]
        return opcode, self._exactly(length)

    def _exactly(self, n):
        data = b""
        while len(data) < n:
            chunk = self.sock.recv(n - len(data))
            if not chunk:
                raise ConnectionError("peer closed")
            data += chunk
        return data

    def close(self):
        mask = b"\x00\x00\x00\x00"
        self.sock.sendall(b"\x88\x82" + mask + struct.pack(">H", 1000))
        self.sock.close()


class TestWebSocket:
    def test_match_stream_subscription(self, served):
        gateway, port = served
        client = _WSClient(port, "/tenants/t0/stream")
        # The 101 reply can race the server-side subscribe call.
        hub = gateway.tenant("t0").hub
        deadline = time.monotonic() + 10
        while hub.subscriber_count() < 1:
            assert time.monotonic() < deadline, "subscription never landed"
            time.sleep(0.01)
        post(port, "/ingest", {"edges": chain_records()})
        records = []
        while len(records) < 3:
            opcode, payload = client.recv_frame()
            if opcode == 0x1:
                records.append(json.loads(payload))
        assert all(r["query"] == "chain" for r in records)
        assert records[0]["matched_at"] == 2.0
        # The record shape matches the on-disk match log exactly.
        assert set(records[0]) == {"query", "matched_at", "edges"}
        client.close()

    def test_websocket_ingest_with_acks(self, served):
        gateway, port = served
        client = _WSClient(port, "/tenants/t0/ingest")
        client.send_text(json.dumps({"edges": chain_records()}))
        opcode, payload = client.recv_frame()
        assert opcode == 0x1
        assert json.loads(payload) == {
            "accepted": 4, "invalid": 0, "position": 4}
        client.send_text("not json")
        opcode, payload = client.recv_frame()
        assert json.loads(payload) == {"error": "bad edge payload"}
        client.close()
        assert gateway.wait_idle(10)
        assert gateway.tenant("t0").matches_delivered == 3

    def test_unknown_ws_route_404(self, served):
        _gateway, port = served
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        key = base64.b64encode(os.urandom(16)).decode()
        sock.sendall((
            "GET /tenants/t0/nonsense HTTP/1.1\r\nHost: x\r\n"
            "Upgrade: websocket\r\nConnection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n\r\n").encode())
        response = sock.recv(4096)
        assert b"404" in response.split(b"\r\n", 1)[0]
        sock.close()

    def test_ping_gets_pong(self, served):
        _gateway, port = served
        client = _WSClient(port, "/tenants/t0/stream")
        mask = b"\x00\x00\x00\x00"
        client.sock.sendall(b"\x89\x84" + mask + b"ping")
        opcode, payload = client.recv_frame()
        assert opcode == 0xA and payload == b"ping"
        client.close()
