"""BoundedEdgeQueue: the three backpressure policies, counters, close."""

import threading
import time

import pytest

from repro.service import BoundedEdgeQueue, QueueClosed
from repro.service.queues import BACKPRESSURE_POLICIES

from .conftest import chain_edges


def drain(queue, max_batch=100):
    entries, _closed = queue.get_batch(max_batch, timeout=0.1)
    return [entry.edge for entry in entries]


class TestBasics:
    def test_fifo_order(self):
        queue = BoundedEdgeQueue(16)
        edges = chain_edges()
        for edge in edges:
            queue.put(edge)
        assert drain(queue) == edges

    def test_counters(self):
        queue = BoundedEdgeQueue(16)
        edges = chain_edges()
        queue.put_many(edges)
        counters = queue.counters()
        assert counters["enqueued"] == 4
        assert counters["depth"] == 4
        assert counters["high_water"] == 4
        drain(queue)
        counters = queue.counters()
        assert counters["dequeued"] == 4 and counters["depth"] == 0

    def test_lag_tracks_oldest_entry(self):
        queue = BoundedEdgeQueue(16)
        assert queue.lag_seconds() == 0.0
        queue.put(chain_edges()[0])
        time.sleep(0.02)
        assert queue.lag_seconds() >= 0.02

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            BoundedEdgeQueue(0)
        with pytest.raises(ValueError, match="policy"):
            BoundedEdgeQueue(4, policy="yolo")
        with pytest.raises(ValueError, match="spill_path"):
            BoundedEdgeQueue(4, policy="spill")

    def test_policies_constant(self):
        assert BACKPRESSURE_POLICIES == ("block", "drop_oldest", "spill")


class TestBlockPolicy:
    def test_put_blocks_until_consumer_makes_room(self):
        queue = BoundedEdgeQueue(2, policy="block")
        edges = chain_edges()
        queue.put(edges[0])
        queue.put(edges[1])
        admitted = []

        def producer():
            queue.put(edges[2])
            admitted.append(True)

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        assert not admitted, "put should still be blocked"
        got = drain(queue, max_batch=1)
        thread.join(2.0)
        assert admitted and got == [edges[0]]
        assert queue.dropped == 0

    def test_put_timeout_raises_instead_of_dropping(self):
        queue = BoundedEdgeQueue(1, policy="block")
        edges = chain_edges()
        queue.put(edges[0])
        with pytest.raises(TimeoutError):
            queue.put(edges[1], timeout=0.05)
        assert queue.dropped == 0 and queue.enqueued == 1


class TestDropOldestPolicy:
    def test_oldest_evicted_and_counted(self):
        queue = BoundedEdgeQueue(2, policy="drop_oldest")
        edges = chain_edges()
        queue.put_many(edges)
        assert queue.dropped == 2
        assert drain(queue) == edges[2:]
        assert queue.counters()["dropped"] == 2


class TestSpillPolicy:
    def test_overflow_spills_and_replays_in_order(self, tmp_path):
        spill = str(tmp_path / "spill.jsonl")
        queue = BoundedEdgeQueue(2, policy="spill", spill_path=spill)
        edges = chain_edges()
        queue.put_many(edges)
        assert queue.spilled == 2
        assert queue.spill_pending() == 2
        assert queue.depth() == 4
        assert drain(queue) == edges, "spill must preserve FIFO order"
        assert queue.spill_pending() == 0
        assert queue.dropped == 0

    def test_spill_keeps_fifo_while_pending(self, tmp_path):
        # Once anything spilled, later puts must also spill — otherwise
        # memory entries would overtake the spilled middle of the stream.
        spill = str(tmp_path / "spill.jsonl")
        queue = BoundedEdgeQueue(2, policy="spill", spill_path=spill)
        edges = chain_edges()
        queue.put_many(edges[:3])          # third spills
        got_first = drain(queue, max_batch=1)   # makes memory room
        queue.put(edges[3])                # must spill, not jump the line
        assert queue.spilled == 2
        assert got_first + drain(queue) == edges

    def test_spill_preserves_offsets(self, tmp_path):
        spill = str(tmp_path / "spill.jsonl")
        queue = BoundedEdgeQueue(1, policy="spill", spill_path=spill)
        edges = chain_edges()
        queue.put(edges[0], offset=("feed", 10))
        queue.put(edges[1], offset=("feed", 20))
        entries, _ = queue.get_batch(10, timeout=0.1)
        assert [tuple(e.offset) for e in entries] == [
            ("feed", 10), ("feed", 20)]
        queue.dispose()


class TestSpillDurability:
    def test_orphaned_spill_recovered_on_boot(self, tmp_path):
        spill = str(tmp_path / "spill.jsonl")
        crashed = BoundedEdgeQueue(2, policy="spill", spill_path=spill)
        edges = chain_edges()
        crashed.put_many(edges)            # the last two spill, fsynced
        crashed.dispose()                  # "crash": never drained

        queue = BoundedEdgeQueue(2, policy="spill", spill_path=spill)
        assert queue.spill_recovered == 2
        assert queue.depth() == 2
        assert drain(queue) == edges[2:]
        counters = queue.counters()
        assert counters["spill_recovered"] == 2
        assert counters["enqueued"] == counters["dequeued"] == 2
        queue.dispose()

    def test_torn_spill_tail_discarded(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        crashed = BoundedEdgeQueue(2, policy="spill",
                                   spill_path=str(spill))
        edges = chain_edges()
        crashed.put_many(edges)
        crashed.dispose()
        # A kill mid-append leaves half a record with no newline.
        with open(spill, "a", encoding="utf-8") as fh:
            fh.write('{"edge": {"src": "half')

        queue = BoundedEdgeQueue(2, policy="spill", spill_path=str(spill))
        assert queue.spill_recovered == 2
        with open(spill, encoding="utf-8") as fh:
            assert fh.read().endswith("\n"), "torn tail must be rewritten"
        assert drain(queue) == edges[2:]
        assert queue.dropped == 0
        queue.dispose()

    def test_new_arrivals_queue_behind_recovered_spill(self, tmp_path):
        spill = str(tmp_path / "spill.jsonl")
        crashed = BoundedEdgeQueue(1, policy="spill", spill_path=spill)
        edges = chain_edges()
        crashed.put_many(edges[:2])        # the second spills
        crashed.dispose()

        queue = BoundedEdgeQueue(4, policy="spill", spill_path=spill)
        queue.put(edges[2])                # must not overtake the spill
        assert drain(queue) == [edges[1], edges[2]]
        queue.dispose()

    def test_clear_discards_memory_and_spill(self, tmp_path):
        import os
        spill = str(tmp_path / "spill.jsonl")
        queue = BoundedEdgeQueue(2, policy="spill", spill_path=spill)
        queue.put_many(chain_edges())      # 2 in memory + 2 spilled
        assert queue.clear() == 4
        assert queue.depth() == 0 and queue.cleared == 4
        counters = queue.counters()
        assert counters["enqueued"] == counters["dequeued"]
        assert os.path.getsize(spill) == 0, "spill file must be reset"
        queue.dispose()


class TestClose:
    def test_put_after_close_raises(self):
        queue = BoundedEdgeQueue(4)
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put(chain_edges()[0])
        assert queue.rejected_closed == 1

    def test_close_wakes_blocked_producer(self):
        queue = BoundedEdgeQueue(1, policy="block")
        edges = chain_edges()
        queue.put(edges[0])
        outcome = []

        def producer():
            try:
                queue.put(edges[1])
            except QueueClosed:
                outcome.append("closed")

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(2.0)
        assert outcome == ["closed"]

    def test_consumer_drains_backlog_then_sees_closed(self):
        queue = BoundedEdgeQueue(8)
        edges = chain_edges()
        queue.put_many(edges)
        queue.close()
        entries, closed = queue.get_batch(2, timeout=0.1)
        assert len(entries) == 2 and not closed
        entries, closed = queue.get_batch(10, timeout=0.1)
        assert len(entries) == 2 and not closed
        entries, closed = queue.get_batch(10, timeout=0.1)
        assert entries == [] and closed

    def test_close_is_idempotent(self):
        queue = BoundedEdgeQueue(4)
        queue.close()
        queue.close()
        assert queue.closed
