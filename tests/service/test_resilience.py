"""The fault-containment primitives (repro.service.resilience)."""

import random

import pytest

from repro.service.resilience import (
    HEALTH_STATES, CircuitBreaker, DeadLetterQueue, HealthTracker,
    RateLimited, RestartBudget, RetryBudget, RetryPolicy, TokenBucket,
    call_with_retry, retrying,
)


class FakeClock:
    """A manually advanced monotonic clock for deterministic tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetry:
    def test_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "done"

        slept = []
        result = call_with_retry(
            flaky, policy=RetryPolicy(attempts=3, base_delay=0.01),
            sleep=slept.append)
        assert result == "done" and len(calls) == 3 and len(slept) == 2

    def test_last_failure_propagates(self):
        def broken():
            raise OSError("persistent")

        with pytest.raises(OSError, match="persistent"):
            call_with_retry(broken, policy=RetryPolicy(attempts=2),
                            sleep=lambda _s: None)

    def test_non_retryable_exception_propagates_at_once(self):
        calls = []

        def wrong():
            calls.append(1)
            raise ValueError("a bug, not a transient")

        with pytest.raises(ValueError):
            call_with_retry(wrong, policy=RetryPolicy(attempts=5),
                            sleep=lambda _s: None)
        assert len(calls) == 1

    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5,
                             multiplier=2.0, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay_for(attempt, rng) for attempt in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.25)
        rng = random.Random(42)
        for attempt in range(50):
            assert 0.75 <= policy.delay_for(attempt, rng) <= 1.25

    def test_budget_stops_retries_early(self):
        clock = FakeClock()
        budget = RetryBudget(capacity=1, rate=0.0, clock=clock)
        calls = []

        def broken():
            calls.append(1)
            raise OSError("persistent")

        with pytest.raises(OSError):
            call_with_retry(broken, policy=RetryPolicy(attempts=5),
                            budget=budget, sleep=lambda _s: None)
        # One retry granted, then the empty budget fails the call fast.
        assert len(calls) == 2 and budget.exhausted == 1

    def test_budget_refills_over_time(self):
        clock = FakeClock()
        budget = RetryBudget(capacity=2, rate=1.0, clock=clock)
        assert budget.spend() and budget.spend() and not budget.spend()
        clock.advance(1.5)
        assert budget.spend()

    def test_decorator_form(self):
        attempts = []

        @retrying(RetryPolicy(attempts=2, base_delay=0.0, jitter=0.0))
        def sometimes():
            attempts.append(1)
            if len(attempts) < 2:
                raise OSError("once")
            return 42

        assert sometimes() == 42 and len(attempts) == 2


class TestCircuitBreaker:
    def make(self, clock, threshold=3, reset=10.0):
        return CircuitBreaker("test", failure_threshold=threshold,
                              reset_timeout=reset, clock=clock)

    def test_trips_after_threshold(self):
        breaker = self.make(FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.trips == 1 and breaker.short_circuits == 1

    def test_success_resets_the_failure_streak(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == "half_open" and breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_probe_reopens_on_failure(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == "half_open"
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_health_mapping(self):
        clock = FakeClock()
        breaker = self.make(clock)
        assert breaker.health == "healthy"
        for _ in range(3):
            breaker.record_failure()
        assert breaker.health == "degraded"
        clock.advance(10.0)
        assert breaker.health == "recovering"

    def test_counters_snapshot(self):
        breaker = self.make(FakeClock())
        assert breaker.counters() == {
            "state": "closed", "trips": 0, "short_circuits": 0}


class TestTokenBucket:
    def test_burst_admits_then_limits(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=4, clock=clock)
        assert bucket.try_acquire(4) == 0.0
        wait = bucket.try_acquire(2)
        assert wait == pytest.approx(0.2)
        assert bucket.admitted == 4 and bucket.limited == 2

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=4, clock=clock)
        bucket.try_acquire(4)
        clock.advance(0.2)          # +2 tokens
        assert bucket.try_acquire(2) == 0.0
        assert bucket.try_acquire(1) > 0.0

    def test_oversized_batch_admitted_at_full_bucket(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=4, clock=clock)
        assert bucket.try_acquire(100) == 0.0, \
            "a batch larger than burst must be throttled, not unservable"
        assert bucket.try_acquire(1) > 0.0

    def test_wait_is_never_zero(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1000.0, burst=1, clock=clock)
        bucket.try_acquire(1)
        assert bucket.try_acquire(1) >= 0.001

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0)

    def test_rate_limited_carries_retry_after(self):
        exc = RateLimited(1.5)
        assert exc.retry_after == 1.5 and "1.500" in str(exc)


class TestRestartBudget:
    def test_backoff_doubles_until_budget_exhausted(self):
        clock = FakeClock()
        budget = RestartBudget(3, window=100.0, base_delay=0.1,
                               clock=clock)
        assert budget.next_delay() == pytest.approx(0.1)
        assert budget.next_delay() == pytest.approx(0.2)
        assert budget.next_delay() == pytest.approx(0.4)
        assert budget.next_delay() is None
        assert budget.granted == 3 and budget.refused == 1

    def test_staying_up_earns_the_budget_back(self):
        clock = FakeClock()
        budget = RestartBudget(1, window=10.0, clock=clock)
        assert budget.next_delay() is not None
        assert budget.next_delay() is None
        clock.advance(11.0)
        assert budget.next_delay() is not None

    def test_backoff_caps(self):
        clock = FakeClock()
        budget = RestartBudget(100, window=1e9, base_delay=1.0,
                               max_delay=8.0, clock=clock)
        delays = [budget.next_delay() for _ in range(6)]
        assert delays == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]


class TestHealthTracker:
    def test_transitions_recorded_with_reasons(self):
        clock = FakeClock()
        tracker = HealthTracker(clock=clock)
        assert tracker.state == "healthy" and tracker.reason == ""
        tracker.set_state("degraded", "disk on fire")
        clock.advance(1.0)
        tracker.set_state("recovering", "restarting")
        tracker.set_state("healthy")
        assert tracker.state == "healthy" and tracker.reason == ""
        arc = [entry["state"] for entry in tracker.history()]
        assert arc == ["degraded", "recovering", "healthy"]

    def test_same_state_is_not_rerecorded(self):
        tracker = HealthTracker()
        tracker.set_state("degraded", "x")
        tracker.set_state("degraded", "y")
        assert len(tracker.history()) == 1

    def test_history_is_bounded(self):
        tracker = HealthTracker(history=4)
        for i in range(10):
            tracker.set_state("degraded", str(i))
            tracker.set_state("healthy")
        assert len(tracker.history()) == 4

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError, match="unknown health state"):
            HealthTracker().set_state("on-fire")

    def test_states_constant(self):
        assert HEALTH_STATES == ("healthy", "degraded", "recovering")


class TestDeadLetterQueue:
    def test_records_reason_error_and_payload(self, tmp_path):
        dlq = DeadLetterQueue(str(tmp_path / "dead.jsonl"))
        assert dlq.record("poison_edge", {"src": "a"},
                          error=ValueError("bad")) is True
        (entry,) = dlq.read_all()
        assert entry["reason"] == "poison_edge"
        assert entry["payload"] == {"src": "a"}
        assert "ValueError" in entry["error"]

    def test_bounded_past_capacity(self, tmp_path):
        dlq = DeadLetterQueue(str(tmp_path / "dead.jsonl"), max_records=2)
        for i in range(4):
            dlq.record("r", {"i": i})
        assert dlq.recorded == 2 and dlq.dropped == 2
        assert len(dlq.read_all()) == 2

    def test_existing_file_counts_toward_the_bound(self, tmp_path):
        path = str(tmp_path / "dead.jsonl")
        DeadLetterQueue(path, max_records=10).record("r", {})
        adopted = DeadLetterQueue(path, max_records=10)
        assert adopted.recorded == 1

    def test_record_never_raises_on_disk_trouble(self, tmp_path):
        dlq = DeadLetterQueue(str(tmp_path / "no-such-dir" / "dead.jsonl"))
        assert dlq.record("r", {}) is False
        assert dlq.dropped == 1
