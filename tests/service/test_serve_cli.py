"""``repro serve``: subprocess smoke, graceful signals, config errors."""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

import repro

from .conftest import CHAIN_DSL

#: The subprocess must import the same repro package the tests run
#: against, regardless of the pytest invocation's cwd.
SUBPROCESS_ENV = dict(
    os.environ,
    PYTHONPATH=os.pathsep.join(filter(None, [
        os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__))),
        os.environ.get("PYTHONPATH", "")])))

SERVER_TOML = """\
[server]
host = "127.0.0.1"
port = 0
state_dir = "state"
checkpoint_interval = 60.0

[[tenant]]
name = "main"

[[tenant.query]]
name = "chain"
text = '''{dsl}'''
"""


@pytest.fixture
def config_file(tmp_path):
    path = tmp_path / "server.toml"
    path.write_text(SERVER_TOML.format(dsl=CHAIN_DSL))
    return path


def start_serve(config_file):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--config", str(config_file)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        cwd=str(config_file.parent), env=SUBPROCESS_ENV)
    banner = proc.stdout.readline()
    match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
    if match is None:
        proc.kill()
        raise AssertionError(f"no listening banner: {banner!r}"
                             f" {proc.stdout.read()!r}")
    return proc, int(match.group(1))


def ingest(port, records):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/ingest",
        data=json.dumps({"edges": records}).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=10) as resp:
        return json.loads(resp.read())


CHAIN_RECORDS = [
    {"src": "a1", "dst": "b1", "src_label": "A", "dst_label": "B",
     "timestamp": 1.0},
    {"src": "b1", "dst": "c1", "src_label": "B", "dst_label": "C",
     "timestamp": 2.0},
]


class TestServeSubprocess:
    def test_serve_sigterm_roundtrip_and_restart(self, config_file):
        proc, port = start_serve(config_file)
        try:
            reply = ingest(port, CHAIN_RECORDS)
            assert reply["accepted"] == 2
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                metrics = urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics",
                    timeout=10).read().decode()
                if 'repro_matches_delivered{tenant="main"} 1' in metrics:
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("match never appeared in /metrics")
        finally:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "final checkpoint" in out and "gateway stopped" in out

        # Restart: the state dir restores and the clock continues.
        proc, port = start_serve(config_file)
        try:
            stats = json.loads(urllib.request.urlopen(
                f"http://127.0.0.1:{port}/stats", timeout=10).read())
            assert stats["tenants"]["main"]["restored"] is True
            assert stats["tenants"]["main"]["edges_pushed"] == 2
        finally:
            proc.send_signal(signal.SIGINT)
            proc.communicate(timeout=30)
        assert proc.returncode == 0


class TestServeErrors:
    def run_serve(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", "serve", *argv],
            capture_output=True, text=True, timeout=60,
            env=SUBPROCESS_ENV)

    def test_missing_config_file(self, tmp_path):
        result = self.run_serve("--config", str(tmp_path / "nope.toml"))
        assert result.returncode == 2
        assert "error: cannot read" in result.stderr

    def test_invalid_config_one_line_error(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[server]\nstate_dir = \"s\"\nbogus_key = 1\n")
        result = self.run_serve("--config", str(path))
        assert result.returncode == 2
        assert result.stderr.startswith("error:")
        assert "bogus_key" in result.stderr

    def test_override_rejects_bad_port(self, config_file):
        result = self.run_serve("--config", str(config_file),
                                "--port", "70000")
        assert result.returncode == 2
        assert "port" in result.stderr
