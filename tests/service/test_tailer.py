"""File tailers: JSONL and CSV follow, resume offsets, bad lines."""

import json
import time

import pytest

from repro.io.csv_stream import write_stream
from repro.service import ServiceGateway, TailConfig
from repro.service.config import TenantConfig, ServerConfig

from .conftest import CHAIN_DSL, chain_edges, chain_records


def tail_config(state_dir, feed_path, **tail_kwargs):
    tail = TailConfig(path=str(feed_path), poll_interval=0.02,
                      **tail_kwargs)
    tenant = TenantConfig(name="t0", queries={"chain": CHAIN_DSL},
                          tails=(tail,))
    return ServerConfig(state_dir=str(state_dir), port=0,
                        checkpoint_interval=0.0, tenants=(tenant,))


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestJSONLTail:
    def test_follows_appends(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        config = tail_config(tmp_path / "state", feed)
        gateway = ServiceGateway(config)
        gateway.start_tailers()
        try:
            records = chain_records()
            with open(feed, "w", encoding="utf-8") as fh:
                for record in records[:2]:
                    fh.write(json.dumps(record) + "\n")
            tenant = gateway.tenant("t0")
            assert wait_for(lambda: tenant.safe.edges_pushed == 2)
            with open(feed, "a", encoding="utf-8") as fh:
                for record in records[2:]:
                    fh.write(json.dumps(record) + "\n")
            assert wait_for(lambda: tenant.matches_delivered == 3)
        finally:
            gateway.shutdown()

    def test_file_created_after_start(self, tmp_path):
        feed = tmp_path / "late.jsonl"
        config = tail_config(tmp_path / "state", feed)
        gateway = ServiceGateway(config)
        gateway.start_tailers()
        try:
            time.sleep(0.1)          # tailer is polling for the file
            with open(feed, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(chain_records()[0]) + "\n")
            tenant = gateway.tenant("t0")
            assert wait_for(lambda: tenant.safe.edges_pushed == 1)
        finally:
            gateway.shutdown()

    def test_bad_lines_counted_not_fatal(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        config = tail_config(tmp_path / "state", feed)
        gateway = ServiceGateway(config)
        gateway.start_tailers()
        try:
            with open(feed, "w", encoding="utf-8") as fh:
                fh.write("{broken json\n")
                fh.write(json.dumps({"wrong": "shape"}) + "\n")
                fh.write(json.dumps(chain_records()[0]) + "\n")
            tenant = gateway.tenant("t0")
            assert wait_for(lambda: tenant.safe.edges_pushed == 1)
            (tailer,) = gateway._tailers
            assert tailer.parse_errors == 2
        finally:
            gateway.shutdown()

    def test_resume_does_not_reread_committed_lines(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        config = tail_config(tmp_path / "state", feed)
        with open(feed, "w", encoding="utf-8") as fh:
            for record in chain_records():
                fh.write(json.dumps(record) + "\n")
        gateway = ServiceGateway(config)
        gateway.start_tailers()
        tenant = gateway.tenant("t0")
        assert wait_for(lambda: tenant.safe.edges_pushed == 4)
        tenant.checkpoint()
        gateway.shutdown()

        restored = ServiceGateway(config)
        restored.start_tailers()
        try:
            time.sleep(0.3)
            tenant = restored.tenant("t0")
            (tailer,) = restored._tailers
            assert tailer.lines_read == 0
            assert tenant.rejected_nonmonotonic == 0
            assert tenant.safe.edges_pushed == 4
        finally:
            restored.shutdown()


class TestCSVTail:
    def test_follows_csv_with_header(self, tmp_path):
        feed = tmp_path / "feed.csv"
        write_stream(chain_edges(), str(feed))
        config = tail_config(tmp_path / "state", feed, format="csv")
        gateway = ServiceGateway(config)
        gateway.start_tailers()
        try:
            tenant = gateway.tenant("t0")
            assert wait_for(lambda: tenant.matches_delivered == 3)
            assert tenant.safe.edges_pushed == 4
        finally:
            gateway.shutdown()

    def test_csv_resume_skips_header_and_committed_rows(self, tmp_path):
        feed = tmp_path / "feed.csv"
        edges = chain_edges()
        write_stream(edges[:2], str(feed))
        config = tail_config(tmp_path / "state", feed, format="csv")
        gateway = ServiceGateway(config)
        gateway.start_tailers()
        tenant = gateway.tenant("t0")
        assert wait_for(lambda: tenant.safe.edges_pushed == 2)
        tenant.checkpoint()
        gateway.shutdown()

        # Append two more rows (no header) and restart.
        import csv as _csv
        with open(feed, "a", newline="", encoding="utf-8") as fh:
            writer = _csv.writer(fh)
            for edge in edges[2:]:
                writer.writerow([edge.src, edge.dst, repr(edge.timestamp),
                                 edge.src_label, edge.dst_label, ""])
        restored = ServiceGateway(config)
        restored.start_tailers()
        try:
            tenant = restored.tenant("t0")
            assert wait_for(lambda: tenant.safe.edges_pushed == 4)
            (tailer,) = restored._tailers
            assert tailer.lines_read == 2       # only the new rows
            assert tenant.rejected_nonmonotonic == 0
        finally:
            restored.shutdown()
