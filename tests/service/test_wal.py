"""The write-ahead log: framing, recovery, exactly-once, tooling.

The crash model throughout: a ``SIGKILL`` leaves the log either intact,
missing its buffered tail, or torn mid-frame.  Every test reduces one of
those states to "reopen and check the survivors form a batch-atomic
prefix" — the property the gateway's zero-producer-replay recovery
stands on.
"""

from __future__ import annotations

import json
import os
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro import faults
from repro.cli import main as cli_main
from repro.persistence import (
    CheckpointCorruptError, CheckpointError, load_session_meta,
)
from repro.service.config import TenantConfig, WalConfig
from repro.service.gateway import Tenant
from repro.service.wal import (
    DedupIndex, WriteAheadLog, _encode_frame, inspect_wal, scan_segment,
)

from .conftest import CHAIN_DSL, chain_records


def _entries(n, start=0):
    return [{"e": {"src": f"s{start + i}", "dst": "d", "src_label": "A",
                   "dst_label": "B", "timestamp": float(start + i + 1)}}
            for i in range(n)]


def _segments(directory):
    return sorted(name for name in os.listdir(directory)
                  if name.startswith("wal-"))


# --------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------- #
class TestFraming:
    def test_scan_roundtrip(self, tmp_path):
        path = tmp_path / "seg.log"
        frames = [{"base": 1}, {"n": 2, "entries": _entries(2)},
                  {"n": 0, "entries": [], "rid": "r1", "invalid": 3}]
        with open(path, "wb") as handle:
            for frame in frames:
                handle.write(_encode_frame(frame))
        scan = scan_segment(str(path))
        assert scan["frames"] == frames
        assert scan["torn_bytes"] == 0
        assert scan["error"] is None

    def test_torn_tail_detected_not_fatal(self, tmp_path):
        path = tmp_path / "seg.log"
        good = _encode_frame({"base": 1}) \
            + _encode_frame({"n": 1, "entries": _entries(1)})
        with open(path, "wb") as handle:
            handle.write(good + _encode_frame(
                {"n": 1, "entries": _entries(1, 1)})[:-3])
        scan = scan_segment(str(path))
        assert len(scan["frames"]) == 2
        assert scan["good_bytes"] == len(good)
        assert scan["torn_bytes"] > 0
        assert scan["error"] is not None

    def test_bitflip_detected(self, tmp_path):
        path = tmp_path / "seg.log"
        blob = _encode_frame({"base": 1}) \
            + _encode_frame({"n": 1, "entries": _entries(1)})
        blob = blob[:len(blob) - 4] + b"\xff" + blob[len(blob) - 3:]
        with open(path, "wb") as handle:
            handle.write(blob)
        scan = scan_segment(str(path))
        assert len(scan["frames"]) == 1      # the header survived
        assert scan["error"] is not None


# --------------------------------------------------------------------- #
# The log itself
# --------------------------------------------------------------------- #
class TestWriteAheadLog:
    def test_append_sync_lsn_accounting(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"))
        last, ticket = wal.append(_entries(3))
        assert (last, wal.appended_lsn) == (3, 3)
        assert wal.durable_lsn == 0
        wal.sync(ticket)
        assert wal.durable_lsn == 3
        last, ticket = wal.append(_entries(2, 3), rid="r9", invalid=1)
        assert last == 5
        wal.sync()                           # None = everything
        assert wal.durable_lsn == 5
        wal.close()

    def test_rid_only_frame_needs_sync_but_no_lsn(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"))
        last, ticket = wal.append([], rid="all-invalid", invalid=4)
        assert last == 0                     # no edges, no LSN advance
        wal.sync(ticket)                     # still durably journaled
        frames = [frame for _, frame in wal.replay(0)]
        assert frames == [{"n": 0, "entries": [], "rid": "all-invalid",
                           "invalid": 4}]
        wal.close()

    def test_rotation_and_replay_continuity(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), segment_bytes=1024)
        total = 0
        for i in range(40):
            wal.append(_entries(2, total))
            total += 2
        wal.close()
        assert len(_segments(tmp_path / "wal")) > 1
        reopened = WriteAheadLog(str(tmp_path / "wal"), segment_bytes=1024)
        lsns = []
        for first, frame in reopened.replay(0):
            lsns.extend(range(first, first + frame["n"]))
        assert lsns == list(range(1, total + 1))
        reopened.close()

    def test_replay_after_lsn_skips_covered_batches(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"))
        for i in range(5):
            wal.append(_entries(2, i * 2))
        wal.sync()
        got = [(first, frame["n"]) for first, frame in wal.replay(6)]
        assert got == [(7, 2), (9, 2)]
        # A cut inside a batch re-yields the whole frame: the caller
        # filters per-edge (batch atomicity, not per-edge addressing).
        got = [first for first, _ in wal.replay(5)]
        assert got == [5, 7, 9]
        wal.close()

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"))
        wal.append(_entries(2))
        wal.append(_entries(2, 2))
        wal.close()
        (path,) = [os.path.join(tmp_path / "wal", name)
                   for name in _segments(tmp_path / "wal")]
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 5)        # tear the last frame
        reopened = WriteAheadLog(str(tmp_path / "wal"))
        assert reopened.appended_lsn == 2
        assert reopened.truncated_bytes > 0
        lsns = [first for first, _ in reopened.replay(0)]
        assert lsns == [1]
        # The log keeps going where the survivors end.
        last, ticket = reopened.append(_entries(2, 2))
        assert last == 4
        reopened.sync(ticket)
        reopened.close()

    def test_interior_corruption_drops_later_segments(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), segment_bytes=1024)
        total = 0
        for i in range(40):
            wal.append(_entries(2, total))
            total += 2
        wal.close()
        names = _segments(tmp_path / "wal")
        assert len(names) >= 3
        first_seg = os.path.join(tmp_path / "wal", names[0])
        data = bytearray(open(first_seg, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(first_seg, "wb").write(bytes(data))
        reopened = WriteAheadLog(str(tmp_path / "wal"), segment_bytes=1024)
        # Only an unbroken prefix of segment 1 survives; everything
        # after the damage is gone (a hole would corrupt replay order).
        assert len(_segments(tmp_path / "wal")) == 1
        assert reopened.corrupt_dropped_frames > 0
        lsns = []
        for first, frame in reopened.replay(0):
            lsns.extend(range(first, first + frame["n"]))
        assert lsns == list(range(1, reopened.appended_lsn + 1))
        assert reopened.appended_lsn < total
        reopened.close()

    def test_reclaim_spares_active_and_uncovered(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"), segment_bytes=1024)
        total = 0
        for i in range(40):
            wal.append(_entries(2, total))
            total += 2
        before = len(_segments(tmp_path / "wal"))
        assert before >= 3
        assert wal.reclaim(0) == 0
        removed = wal.reclaim(wal.appended_lsn)
        assert removed > 0
        after = _segments(tmp_path / "wal")
        assert len(after) == before - removed
        # Replay past a reclaimed prefix still yields the survivors.
        survivors = [first for first, _ in wal.replay(0)]
        assert survivors and survivors[0] > 1
        wal.close()

    def test_abort_then_reopen_is_a_prefix(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"))
        wal.append(_entries(2))
        wal.sync()
        wal.append(_entries(2, 2))
        wal.abort()                          # no fsync for the tail
        reopened = WriteAheadLog(str(tmp_path / "wal"))
        lsns = []
        for first, frame in reopened.replay(0):
            lsns.extend(range(first, first + frame["n"]))
        # Whatever survived is a contiguous prefix that includes every
        # synced edge.
        assert lsns == list(range(1, len(lsns) + 1))
        assert len(lsns) >= 2
        reopened.close()

    @settings(max_examples=25, deadline=None)
    @given(batches=st.lists(st.integers(min_value=1, max_value=4),
                            min_size=1, max_size=8),
           cut=st.integers(min_value=0, max_value=10_000),
           data=st.data())
    def test_recovery_yields_batch_atomic_prefix(self, tmp_path_factory,
                                                 batches, cut, data):
        """Tear the log at *any* byte: reopening must yield a prefix of
        whole batches — never a partial batch, never a hole."""
        directory = str(tmp_path_factory.mktemp("wal"))
        wal = WriteAheadLog(directory, segment_bytes=1024)
        sizes = []
        total = 0
        for size in batches:
            wal.append(_entries(size, total))
            sizes.append(size)
            total += size
        wal.close()
        names = _segments(directory)
        victim = os.path.join(
            directory, data.draw(st.sampled_from(names), label="segment"))
        size = os.path.getsize(victim)
        with open(victim, "r+b") as handle:
            handle.truncate(min(cut % (size + 1), size))
        reopened = WriteAheadLog(directory, segment_bytes=1024)
        recovered = []
        for first, frame in reopened.replay(0):
            assert first == len(recovered) + 1      # contiguous
            recovered.extend(
                item["e"]["src"] for item in frame["entries"])
        # A prefix of the original admission order, on batch boundaries.
        expected = [f"s{i}" for i in range(total)]
        assert recovered == expected[:len(recovered)]
        boundaries = {0}
        acc = 0
        for size in sizes:
            acc += size
            boundaries.add(acc)
        assert len(recovered) in boundaries
        reopened.close()

    def test_mid_fsync_crash_is_retry_safe(self, tmp_path):
        """An fsync that dies (EIO) leaves the ticket unsynced; a retry
        completes the same commit without duplicating frames."""
        wal = WriteAheadLog(str(tmp_path / "wal"))
        plan = faults.FaultPlan([faults.FaultSpec(
            site="wal.fsync", kind="io_error", at=1)])
        with faults.active(plan):
            last, ticket = wal.append(_entries(2))
            with pytest.raises(OSError):
                wal.sync(ticket)
            assert wal.durable_lsn == 0
            wal.sync(ticket)                 # retry: same commit
        assert wal.durable_lsn == 2
        lsns = [first for first, _ in wal.replay(0)]
        assert lsns == [1]
        wal.close()


# --------------------------------------------------------------------- #
# Dedup window
# --------------------------------------------------------------------- #
class TestDedupIndex:
    def test_bounded_fifo(self):
        index = DedupIndex(capacity=2)
        for i in range(3):
            index.put(f"r{i}", {"accepted": i})
        assert index.get("r0") is None       # displaced, oldest first
        assert index.get("r2") == {"accepted": 2}
        assert len(index) == 2

    def test_snapshot_restore_roundtrip(self):
        index = DedupIndex(capacity=8)
        index.put("a", {"accepted": 1})
        index.put("b", {"accepted": 2})
        other = DedupIndex(capacity=8)
        other.put("stale", {"accepted": 0})
        other.restore(index.snapshot())
        assert other.get("stale") is None    # restore replaces
        assert other.get("b") == {"accepted": 2}
        other.restore(None)                  # pre-WAL checkpoint meta
        assert len(other) == 0


# --------------------------------------------------------------------- #
# Checkpoint container corruption (satellite: typed errors)
# --------------------------------------------------------------------- #
class TestCheckpointCorruption:
    def _write_checkpoint(self, tmp_path):
        from repro.api import Session
        from repro.persistence import save_session

        session = Session(window=6.0)
        session.register("chain", CHAIN_DSL)
        path = str(tmp_path / "checkpoint.pkl")
        save_session(session, path, meta={"edges_offered": 0})
        return path

    def test_truncation_raises_typed_error(self, tmp_path):
        path = self._write_checkpoint(tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:len(data) // 2])
        with pytest.raises(CheckpointCorruptError) as info:
            load_session_meta(path)
        assert info.value.path == path
        assert "truncated" in info.value.reason

    def test_bitflip_raises_typed_error(self, tmp_path):
        path = self._write_checkpoint(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[-10] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(CheckpointCorruptError) as info:
            load_session_meta(path)
        assert "CRC" in info.value.reason

    def test_garbage_pickle_raises_typed_error(self, tmp_path):
        path = str(tmp_path / "checkpoint.pkl")
        open(path, "wb").write(b"not a pickle at all")
        with pytest.raises(CheckpointCorruptError):
            load_session_meta(path)

    def test_typed_error_is_a_checkpoint_error(self):
        # The gateway's chain walk catches the base class.
        assert issubclass(CheckpointCorruptError, CheckpointError)


# --------------------------------------------------------------------- #
# Tenant-level recovery (the tentpole end to end)
# --------------------------------------------------------------------- #
def _wal_tenant_config(**wal_overrides):
    return TenantConfig(
        name="t0", queries={"chain": CHAIN_DSL},
        wal=WalConfig(**wal_overrides)).validate()


def _drain(tenant, count, timeout=5.0):
    deadline = time.monotonic() + timeout
    while tenant.edges_offered < count and time.monotonic() < deadline:
        time.sleep(0.01)
    assert tenant.edges_offered >= count


class TestTenantRecovery:
    def test_crash_replay_restores_everything(self, tmp_path):
        config = _wal_tenant_config()
        tenant = Tenant(config, str(tmp_path))
        tenant.start_worker()
        ack = tenant.ingest_json(chain_records(), request_id="burst-1")
        assert ack == {"accepted": 4, "invalid": 0, "position": 4,
                       "durable": True}
        _drain(tenant, 4)
        matches_before = tenant.matches_delivered
        assert matches_before == 3
        tenant.abort()                       # SIGKILL stand-in

        reborn = Tenant(config, str(tmp_path))
        assert reborn.replayed_edges == 4
        assert reborn.matches_delivered == matches_before
        assert reborn.edges_offered == 4
        retry = reborn.ingest_json(chain_records(),
                                   request_id="burst-1")
        assert retry["deduplicated"] is True
        assert retry["accepted"] == 4
        assert reborn.dedup_hits == 1
        reborn.abort()

    def test_checkpoint_bounds_replay(self, tmp_path):
        config = _wal_tenant_config()
        tenant = Tenant(config, str(tmp_path))
        tenant.start_worker()
        records = chain_records()
        tenant.ingest_json(records[:2])
        _drain(tenant, 2)
        meta = tenant.checkpoint()
        assert meta["wal_lsn"] == 2
        tenant.ingest_json(records[2:])
        _drain(tenant, 4)
        tenant.abort()

        reborn = Tenant(config, str(tmp_path))
        assert reborn.replayed_edges == 2    # only past the barrier
        assert reborn.edges_offered == 4
        reborn.abort()

    def test_corrupt_newest_checkpoint_falls_back(self, tmp_path):
        config = _wal_tenant_config()
        tenant = Tenant(config, str(tmp_path), checkpoint_keep=2)
        tenant.start_worker()
        records = chain_records()
        tenant.ingest_json(records[:2])
        _drain(tenant, 2)
        tenant.checkpoint()                  # becomes .1 on the next one
        tenant.ingest_json(records[2:])
        _drain(tenant, 4)
        tenant.checkpoint()
        tenant.abort()

        newest = os.path.join(str(tmp_path), "t0", "checkpoint.pkl")
        fallback = newest + ".1"
        assert os.path.exists(fallback)
        data = bytearray(open(newest, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(newest, "wb").write(bytes(data))

        reborn = Tenant(config, str(tmp_path), checkpoint_keep=2)
        assert reborn.checkpoint_fallbacks == 1
        # The older capture covers 2 edges; the WAL replays the rest.
        assert reborn.replayed_edges == 2
        assert reborn.edges_offered == 4
        # This incarnation redelivers the 2 post-barrier matches; the
        # one before the barrier sits in the sealed segment — the full
        # log holds all 3.
        assert reborn.matches_delivered == 2
        match_dir = os.path.join(str(tmp_path), "t0", "matches")
        reborn.close_sinks()
        logged = sum(
            1 for name in os.listdir(match_dir)
            for line in open(os.path.join(match_dir, name))
            if line.strip())
        assert logged == 3
        reborn.abort()

    def test_spill_overflow_stays_exactly_once(self, tmp_path):
        config = TenantConfig(
            name="t0", queries={"chain": CHAIN_DSL},
            queue_capacity=2, backpressure="spill",
            wal=WalConfig()).validate()
        tenant = Tenant(config, str(tmp_path))
        # No worker: the queue spills past capacity 2.
        ack = tenant.ingest_json(chain_records())
        assert ack["accepted"] == 4
        assert tenant.queue.spilled > 0
        spill_path = tenant.queue.spill_path
        assert os.path.exists(spill_path)
        tenant.abort()

        # The orphan spill is discarded — the WAL alone re-delivers, so
        # nothing arrives twice.
        reborn = Tenant(config, str(tmp_path))
        assert not os.path.exists(spill_path)
        assert reborn.replayed_edges == 4
        assert reborn.edges_offered == 4
        assert reborn.matches_delivered == 3
        reborn.abort()

    def test_sync_failure_fails_http_but_not_tailers(self, tmp_path):
        from repro.graph.edge import StreamEdge

        config = _wal_tenant_config()
        tenant = Tenant(config, str(tmp_path))
        # Four specs: one per retry attempt of the first HTTP sync plus
        # one for the tailer path (each sync retries up to 3 times).
        plan = faults.FaultPlan([
            faults.FaultSpec(site="wal.fsync", kind="io_error", every=1,
                             limit=6)])
        with faults.active(plan):
            with pytest.raises(OSError):
                tenant.ingest_json(chain_records()[:1],
                                   request_id="will-retry")
            assert tenant.wal_sync_errors == 1
            assert tenant.health.state == "degraded"
            # The tailer path swallows: the batch stays journaled and
            # buffered, the offset only moves via checkpoints.
            edge = StreamEdge("x1", "y1", src_label="A", dst_label="B",
                              timestamp=9.0)
            admitted = tenant.ingest_edges([edge], offset=("feed", 10))
            assert admitted == 1
            assert tenant.wal_sync_errors == 2
        # Post-fault, a retry of the HTTP batch dedups (the ack was
        # recorded with the journal entry, exactly-once holds).
        retry = tenant.ingest_json(chain_records()[:1],
                                   request_id="will-retry")
        assert retry["deduplicated"] is True
        tenant.start_worker()
        _drain(tenant, 2)
        tenant.abort()

    def test_supervised_restart_replays_wal(self, tmp_path):
        config = _wal_tenant_config()
        tenant = Tenant(config, str(tmp_path))
        tenant.start_worker()
        tenant.ingest_json(chain_records())
        _drain(tenant, 4)
        matches = tenant.matches_delivered
        assert tenant._restart_from_checkpoint(RuntimeError("boom"))
        assert tenant.restarts == 1
        assert tenant.replayed_edges == 4
        assert tenant.edges_offered == 4
        # The counter is cumulative across the in-process restart; the
        # rebuilt match log holds exactly one copy of each match.
        assert tenant.matches_delivered == 2 * matches
        tenant.close_sinks()
        match_dir = os.path.join(str(tmp_path), "t0", "matches")
        logged = sum(
            1 for name in os.listdir(match_dir)
            for line in open(os.path.join(match_dir, name))
            if line.strip())
        assert logged == matches
        tenant.abort()

    def test_non_wal_tenant_acks_keep_their_shape(self, tmp_path):
        config = TenantConfig(
            name="t0", queries={"chain": CHAIN_DSL}).validate()
        tenant = Tenant(config, str(tmp_path))
        ack = tenant.ingest_json(chain_records())
        assert ack == {"accepted": 4, "invalid": 0, "position": 4}
        assert tenant.wal is None
        tenant.start_worker()
        _drain(tenant, 4)
        tenant.abort()

    def test_status_exposes_wal_counters(self, tmp_path):
        config = _wal_tenant_config()
        tenant = Tenant(config, str(tmp_path))
        tenant.ingest_json(chain_records()[:1], request_id="r")
        status = tenant.status()
        wal = status["wal"]
        assert wal["appends"] == 1
        assert wal["fsyncs"] >= 1
        assert wal["durable_lsn"] == 1
        assert wal["dedup_window"] == 1
        assert status["checkpoint_fallbacks"] == 0
        assert status["dlq_replayed"] == 0
        tenant.abort()


# --------------------------------------------------------------------- #
# CLI tooling
# --------------------------------------------------------------------- #
class TestWalCli:
    def test_inspect_and_verify_clean(self, tmp_path, capsys):
        wal = WriteAheadLog(str(tmp_path / "wal"))
        wal.append(_entries(3))
        wal.close()
        assert cli_main(["wal", "inspect", str(tmp_path / "wal")]) == 0
        out = capsys.readouterr().out
        assert "3 edge(s)" in out
        assert cli_main(["wal", "verify", str(tmp_path / "wal")]) == 0

    def test_verify_fails_on_interior_corruption(self, tmp_path, capsys):
        wal = WriteAheadLog(str(tmp_path / "wal"), segment_bytes=1024)
        for i in range(40):
            wal.append(_entries(2, i * 2))
        wal.close()
        names = _segments(tmp_path / "wal")
        victim = os.path.join(tmp_path / "wal", names[0])
        data = bytearray(open(victim, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(victim, "wb").write(bytes(data))
        assert cli_main(["wal", "verify", str(tmp_path / "wal")]) == 1
        assert "interior corruption" in capsys.readouterr().err

    def test_inspect_json(self, tmp_path, capsys):
        wal = WriteAheadLog(str(tmp_path / "wal"))
        wal.append(_entries(1))
        wal.close()
        assert cli_main(["wal", "inspect", str(tmp_path / "wal"),
                         "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["edges"] == 1
        assert inspect_wal(str(tmp_path / "wal"))["edges"] == 1


class TestDlqCli:
    def _dead_letter_file(self, tmp_path):
        path = tmp_path / "deadletter.jsonl"
        rows = [
            {"at": 1.0, "reason": "poison_edge",
             "payload": {"src": "a1", "dst": "b1", "src_label": "A",
                         "dst_label": "B", "timestamp": 1.0}},
            {"at": 2.0, "reason": "sink_write", "payload": {"m": 1},
             "error": "OSError(...)"},
        ]
        path.write_text("".join(json.dumps(row) + "\n" for row in rows))
        return str(path)

    def test_list_and_inspect(self, tmp_path, capsys):
        path = self._dead_letter_file(tmp_path)
        assert cli_main(["dlq", "list", path]) == 0
        out = capsys.readouterr().out
        assert "poison_edge: 1" in out and "sink_write: 1" in out
        assert cli_main(["dlq", "inspect", path,
                         "--reason", "poison_edge"]) == 0
        out = capsys.readouterr().out
        assert "a1" in out and "sink_write" not in out

    def test_replay_dry_run(self, tmp_path, capsys):
        path = self._dead_letter_file(tmp_path)
        assert cli_main(["dlq", "replay", path, "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would POST 1 edge(s)" in out

    def test_replay_against_live_gateway(self, tmp_path, capsys):
        import urllib.request

        from repro.service import ServerConfig, ServiceGateway

        path = self._dead_letter_file(tmp_path)
        tenant = TenantConfig(name="t0", queries={"chain": CHAIN_DSL},
                              wal=WalConfig())
        config = ServerConfig(state_dir=str(tmp_path / "state"), port=0,
                              checkpoint_interval=0.0, tenants=(tenant,))
        gateway = ServiceGateway(config).start_background()
        try:
            url = f"http://127.0.0.1:{gateway.port}"
            assert cli_main(["dlq", "replay", path, "--url", url]) == 0
            out = capsys.readouterr().out
            assert "replayed 1 edge(s)" in out
            live = gateway.tenant("t0")
            assert live.dlq_replayed == 1
            # Same file, same ids: a re-run dedups instead of doubling.
            assert cli_main(["dlq", "replay", path, "--url", url]) == 0
            assert "deduplicated" in capsys.readouterr().out
            assert live.dlq_replayed == 1
            with urllib.request.urlopen(url + "/stats", timeout=5) as resp:
                stats = json.loads(resp.read())
            assert stats["tenants"]["t0"]["wal"]["dedup_hits"] == 1
        finally:
            gateway.shutdown()
