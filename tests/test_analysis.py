"""Stream/selectivity analysis reports + the analyze CLI."""

import pytest

from repro.analysis import analyze_selectivity, analyze_stream
from repro.cli import main
from repro.io.csv_stream import write_stream

from .conftest import fig3_stream, fig5_query


class TestStreamReport:
    def test_basic_statistics(self):
        report = analyze_stream(fig3_stream())
        assert report.num_edges == 10
        assert report.num_vertices == 9
        assert report.timespan == 9.0
        assert 0 < report.head_concentration() <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            analyze_stream([])

    def test_render(self):
        text = analyze_stream(fig3_stream()).render()
        assert "edges:" in text and "10" in text
        assert "most common term labels" in text

    def test_wikitalk_skew_visible(self):
        """Small-alphabet streams show the head concentration clearly (for
        netflow the random source port makes full term labels near-unique,
        so port-level skew is asserted in the dataset tests instead)."""
        from repro.datasets import generate_wikitalk_stream
        report = analyze_stream(list(generate_wikitalk_stream(2000, seed=9)))
        assert report.head_concentration(20) > 0.3


class TestSelectivityReport:
    def test_probabilities_and_estimates(self):
        report = analyze_selectivity(fig5_query(), fig3_stream(),
                                     window_edges=9)
        assert report.edge_probabilities[1] == pytest.approx(0.2)
        assert len(report.subquery_estimates) == 3
        assert report.dead_edges == []

    def test_dead_edge_detection(self):
        from repro import QueryGraph
        q = QueryGraph()
        q.add_vertex("x", "zz")       # label absent from the stream
        q.add_vertex("y", "b")
        q.add_edge("dead", "x", "y")
        report = analyze_selectivity(q, fig3_stream(), window_edges=9)
        assert report.dead_edges == ["dead"]
        assert "never matches" in report.render()

    def test_render(self):
        text = analyze_selectivity(fig5_query(), fig3_stream(),
                                   window_edges=9).render()
        assert "per-edge match probability" in text
        assert "cardinalities" in text


class TestAnalyzeCLI:
    def test_analyze_stream_only(self, tmp_path, capsys):
        path = str(tmp_path / "s.csv")
        write_stream(fig3_stream(), path)
        assert main(["analyze", path]) == 0
        assert "Stream report" in capsys.readouterr().out

    def test_analyze_with_query(self, tmp_path, capsys):
        stream_path = str(tmp_path / "s.csv")
        write_stream(fig3_stream(), stream_path)
        query_path = tmp_path / "q.tq"
        query_path.write_text(
            "vertex x a\nvertex y b\nedge e x -> y\nwindow 9\n")
        assert main(["analyze", stream_path, "--query", str(query_path)]) == 0
        out = capsys.readouterr().out
        assert "Selectivity report" in out

    def test_analyze_warns_on_dead_edges(self, tmp_path, capsys):
        stream_path = str(tmp_path / "s.csv")
        write_stream(fig3_stream(), stream_path)
        query_path = tmp_path / "q.tq"
        query_path.write_text(
            "vertex x zz\nvertex y b\nedge e x -> y\nwindow 9\n")
        assert main(["analyze", stream_path, "--query", str(query_path)]) == 0
        captured = capsys.readouterr()
        assert "never match" in captured.err


class TestSimulateCLI:
    def test_simulate_prints_speedups(self, tmp_path, capsys):
        stream_path = str(tmp_path / "s.csv")
        write_stream(fig3_stream(), stream_path)
        query_path = tmp_path / "q.tq"
        query_path.write_text(
            "vertex x a\nvertex y b\nedge e x -> y\nwindow 9\n")
        assert main(["simulate", str(query_path), stream_path,
                     "--threads", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "fine-grained" in out and "all-locks" in out

    def test_simulate_empty_traces(self, tmp_path, capsys):
        stream_path = str(tmp_path / "s.csv")
        write_stream(fig3_stream(), stream_path)
        query_path = tmp_path / "q.tq"
        query_path.write_text(
            "vertex x zz\nvertex y zz\nedge e x -> y\nwindow 9\n")
        assert main(["simulate", str(query_path), stream_path]) == 0
        assert "never matched" in capsys.readouterr().out
