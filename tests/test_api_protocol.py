"""Protocol conformance: all four engines behind one ``Matcher`` interface.

One parametrized scenario (insert → match → timing-violating arrivals →
expiry) runs across Timing (both storages), SJ-tree, IncMat and the naive
oracle, exercising them *only* through the :class:`repro.api.Matcher`
protocol and asserting identical match sets at every step.  This is the
contract that lets ``Session``, the bench harness and the cross-engine
tests treat engines interchangeably.
"""

import pytest

from repro import EngineConfig, Matcher, StreamEdge, TimingMatcher
from repro.api import MatcherBase
from repro.baselines.incmat import IncMatMatcher
from repro.baselines.naive import NaiveSnapshotMatcher
from repro.baselines.sjtree import SJTreeMatcher
from repro.isomorphism import QuickSI

from .conftest import path_query

FACTORIES = {
    "timing": lambda q, w, **kw: TimingMatcher.from_config(q, w, **kw),
    "timing-ind": lambda q, w, **kw: TimingMatcher.from_config(
        q, w, storage="independent", **kw),
    "sjtree": lambda q, w, **kw: SJTreeMatcher(q, w, **kw),
    "incmat": lambda q, w, **kw: IncMatMatcher(q, w, QuickSI(), **kw),
    "naive": lambda q, w, **kw: NaiveSnapshotMatcher(q, w, **kw),
}


def edge(src, dst, ts, src_label, dst_label, edge_id=None):
    return StreamEdge(src, dst, src_label=src_label, dst_label=dst_label,
                      timestamp=ts, edge_id=edge_id)


def scenario_stream():
    """Arrivals for the two-hop chain query e0(A→B) ≺ e1(B→C)."""
    return [
        edge("a1", "b1", 1.0, "A", "B"),   # e0 candidate
        edge("b1", "c1", 2.0, "B", "C"),   # completes (a1, b1, c1)
        edge("a2", "b1", 3.0, "A", "B"),   # second e0 candidate
        edge("b1", "c2", 4.0, "B", "C"),   # completes via a1 and a2
        edge("c1", "a1", 5.0, "C", "A"),   # structural noise
        edge("b3", "c4", 6.0, "B", "C"),   # e1 arriving before e0 …
        edge("a3", "b3", 7.0, "A", "B"),   # … violates the timing order
    ]


#: Matches completed per arrival timestamp (the paper's online semantics).
EXPECTED_NEW = {1.0: 0, 2.0: 1, 3.0: 0, 4.0: 2, 5.0: 0, 6.0: 0, 7.0: 0}


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestProtocolConformance:
    def test_isinstance_of_protocol(self, name):
        matcher = FACTORIES[name](path_query(2), 6.0)
        assert isinstance(matcher, Matcher)
        assert isinstance(matcher, MatcherBase)

    def test_scenario_matches_oracle_at_every_step(self, name):
        query = path_query(2)
        matcher = FACTORIES[name](query, 6.0)
        oracle = NaiveSnapshotMatcher(path_query(2), 6.0)
        for arrival in scenario_stream():
            got = matcher.push(arrival)
            expected = oracle.push(arrival)
            assert len(got) == EXPECTED_NEW[arrival.timestamp], arrival
            assert set(got) == set(expected), arrival
            assert set(matcher.current_matches()) == \
                set(oracle.current_matches()), arrival
            assert matcher.result_count() == oracle.result_count()

    def test_expiry_drains_matches(self, name):
        matcher = FACTORIES[name](path_query(2), 6.0)
        matcher.push_many(scenario_stream())
        # At t=7 with |W|=6 the t=1 edge is already gone, taking its two
        # matches with it; the (a2, b1, c2) match is still in-window.
        assert matcher.result_count() == 1
        # Slide far enough that every match-supporting edge expires.
        matcher.advance_time(10.5)
        assert matcher.current_matches() == []
        assert matcher.result_count() == 0

    def test_push_many_equals_individual_pushes(self, name):
        one_by_one = FACTORIES[name](path_query(2), 6.0)
        batched = FACTORIES[name](path_query(2), 6.0)
        singles = []
        for arrival in scenario_stream():
            singles.extend(one_by_one.push(arrival))
        assert batched.push_many(scenario_stream()) == singles

    def test_stats_counters(self, name):
        matcher = FACTORIES[name](path_query(2), 6.0)
        matcher.push_many(scenario_stream())
        stats = matcher.stats.as_dict()
        assert stats["edges_seen"] == 7
        assert stats["matches_emitted"] == 3
        assert stats["edges_skipped"] == 0
        matcher.advance_time(10.5)
        assert matcher.stats.expired_edges >= 1

    def test_space_cells_is_nonnegative_int(self, name):
        matcher = FACTORIES[name](path_query(2), 6.0)
        matcher.push_many(scenario_stream())
        cells = matcher.space_cells()
        assert isinstance(cells, int) and cells >= 0


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestDuplicatePolicy:
    def duplicate_pair(self):
        first = edge("a1", "b1", 1.0, "A", "B", edge_id="dup")
        clone = edge("a9", "b9", 2.0, "A", "B", edge_id="dup")
        return first, clone

    def test_raise_is_the_default(self, name):
        matcher = FACTORIES[name](path_query(2), 6.0)
        first, clone = self.duplicate_pair()
        matcher.push(first)
        with pytest.raises(ValueError, match="duplicate in-window edge id"):
            matcher.push(clone)

    def test_skip_drops_silently(self, name):
        matcher = FACTORIES[name](path_query(2), 6.0,
                                  duplicate_policy="skip")
        first, clone = self.duplicate_pair()
        matcher.push(first)
        assert matcher.push(clone) == []
        assert matcher.stats.edges_skipped == 0
        assert matcher.stats.edges_seen == 1

    def test_count_surfaces_in_stats(self, name):
        matcher = FACTORIES[name](path_query(2), 6.0,
                                  duplicate_policy="count")
        first, clone = self.duplicate_pair()
        matcher.push(first)
        assert matcher.push(clone) == []
        assert matcher.stats.edges_skipped == 1

    def test_recycled_id_is_fine_after_expiry(self, name):
        matcher = FACTORIES[name](path_query(2), 2.0)
        first, clone = self.duplicate_pair()
        matcher.push(first)
        matcher.advance_time(4.0)       # first expires
        matcher.push(StreamEdge("a9", "b9", src_label="A", dst_label="B",
                                timestamp=5.0, edge_id="dup"))  # no raise

    def test_arrival_expires_old_bearer_before_duplicate_check(self, name):
        """An id whose previous bearer is past the window by the arrival's
        own timestamp is not a duplicate — expiry runs first."""
        matcher = FACTORIES[name](path_query(2), 6.0)
        first, _ = self.duplicate_pair()
        matcher.push(first)
        late = edge("a5", "b5", 100.0, "A", "B", edge_id="dup")
        assert matcher.push(late) == []            # no spurious ValueError
        assert matcher.stats.edges_skipped == 0

    def test_dropped_duplicate_still_advances_time(self, name):
        """A skipped duplicate arrival must still slide the window: old
        matches cannot linger past their expiry."""
        matcher = FACTORIES[name](path_query(2), 6.0,
                                  duplicate_policy="skip")
        matcher.push(edge("a1", "b1", 1.0, "A", "B", edge_id="keep"))
        matcher.push(edge("b1", "c1", 2.0, "B", "C"))
        assert matcher.result_count() == 1
        # Same id as the still-live t=2 edge, far in the future: dropped
        # as a duplicate?  No — by t=100 the bearer has expired, so this
        # is a fresh arrival; and either way the t=1 match must be gone.
        matcher.push(edge("b9", "c9", 100.0, "B", "C",
                          edge_id=("b1", "c1", 2.0)))
        assert matcher.result_count() == 0
        assert matcher.window.current_time == 100.0

    def test_raise_is_side_effect_free(self, name):
        """A rejected push must not poison the engine: no expiry, no
        clock advance — the caller may recover and continue."""
        matcher = FACTORIES[name](path_query(2), 10.0)
        matcher.push(edge("a1", "b1", 1.0, "A", "B"))
        matcher.push(edge("b1", "c1", 2.0, "B", "C"))
        before = matcher.result_count()
        skewed = edge("a9", "b9", 11.0, "A", "B",
                      edge_id=("b1", "c1", 2.0))   # in-window dup at t=11
        with pytest.raises(ValueError, match="duplicate"):
            matcher.push(skewed)
        assert matcher.result_count() == before
        matcher.push(edge("b1", "c2", 9.0, "B", "C"))   # stream continues
        assert matcher.result_count() == before + 1

    def test_unknown_policy_rejected(self, name):
        with pytest.raises(ValueError, match="duplicate policy"):
            FACTORIES[name](path_query(2), 6.0, duplicate_policy="bogus")


class TestEngineConfig:
    def test_from_config_equals_legacy_kwargs(self):
        query = path_query(2)
        legacy = TimingMatcher(query, 6.0, use_mstree=False)
        config = TimingMatcher.from_config(query, 6.0,
                                           EngineConfig(storage="independent"))
        for arrival in scenario_stream():
            assert set(legacy.push(arrival)) == set(config.push(arrival))
        assert legacy.store_profile() == config.store_profile()
        assert not config.use_mstree

    def test_legacy_kwargs_override_config(self):
        matcher = TimingMatcher(path_query(2), 6.0,
                                config=EngineConfig(storage="independent"),
                                use_mstree=True)
        assert matcher.use_mstree

    def test_from_config_field_overrides(self):
        matcher = TimingMatcher.from_config(
            path_query(2), 6.0, EngineConfig(), storage="independent",
            duplicate_policy="skip")
        assert not matcher.use_mstree
        assert matcher.duplicate_policy == "skip"

    def test_validate_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="storage"):
            EngineConfig(storage="hologram").validate()
        with pytest.raises(ValueError, match="duplicate policy"):
            EngineConfig(duplicate_policy="maybe").validate()
        with pytest.raises(ValueError, match="decomposition"):
            EngineConfig(decomposition="psychic").validate()
        with pytest.raises(ValueError, match="join order"):
            EngineConfig(join_order="jnn").validate()
        # A session configured with a typo fails fast, not at register().
        from repro import Session
        with pytest.raises(ValueError, match="join order"):
            Session(window=30.0, config=EngineConfig(join_order="jnn"))
        with pytest.raises(ValueError, match="storage"):
            TimingMatcher.from_config(path_query(2), 6.0,
                                      EngineConfig(storage="hologram"))

    def test_config_is_recorded_on_the_engine(self):
        config = EngineConfig(decomposition="random", seed=7)
        matcher = TimingMatcher.from_config(path_query(3), 6.0, config)
        assert matcher.config == config

    def test_default_guard_threads_through(self):
        from repro.core.guard import TraceGuard
        guard = TraceGuard()
        matcher = TimingMatcher.from_config(
            path_query(2), 6.0, EngineConfig(guard=guard))
        matcher.push(edge("a1", "b1", 1.0, "A", "B"))
        assert guard.ops, "the config guard must see the insert operations"
