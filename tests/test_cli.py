"""CLI: explain / run / generate end-to-end through main()."""

import os

import pytest

from repro.cli import main
from repro.io.csv_stream import read_stream

FIG1_QUERY = """\
vertex V IP
vertex W IP
vertex B IP
edge t1 V -> W [*, 80, tcp]
edge t2 W -> V [*, 80, tcp]
edge t3 V -> B [*, 6667, tcp]
edge t4 B -> V [*, 6667, tcp]
edge t5 V -> B [*, 6667, tcp]
order t1 < t2 < t3 < t4 < t5
window 30
"""

SIMPLE_QUERY = """\
vertex a A
vertex b B
vertex c A
edge e1 a -> b
edge e2 b -> c
order e1 < e2
window 10
"""

SIMPLE_STREAM = """\
src,dst,timestamp,src_label,dst_label,label
x1,y1,1.0,A,B,
y1,z1,2.0,B,A,
y1,z2,3.0,B,A,
"""


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "query.tq"
    path.write_text(SIMPLE_QUERY)
    return str(path)


@pytest.fixture
def stream_file(tmp_path):
    path = tmp_path / "stream.csv"
    path.write_text(SIMPLE_STREAM)
    return str(path)


class TestExplain:
    def test_explain_prints_plan(self, tmp_path, capsys):
        path = tmp_path / "fig1.tq"
        path.write_text(FIG1_QUERY)
        assert main(["explain", str(path)]) == 0
        out = capsys.readouterr().out
        assert "TC-query" in out
        assert "window hint: 30.0" in out


class TestRun:
    def test_run_reports_matches(self, query_file, stream_file, capsys):
        assert main(["run", query_file, stream_file]) == 0
        out = capsys.readouterr().out
        assert out.count("match @") == 2      # e1e2 via z1 and via z2
        assert "processed 3 edges" in out

    def test_run_quiet(self, query_file, stream_file, capsys):
        assert main(["run", query_file, stream_file, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "match @" not in out
        assert "2 matches" in out

    def test_run_window_override(self, query_file, stream_file, capsys):
        # A 0.5 window can never hold both edges.
        assert main(["run", query_file, stream_file,
                     "--window", "0.5"]) == 0
        assert "0 matches" in capsys.readouterr().out

    def test_run_without_window_errors(self, tmp_path, stream_file, capsys):
        path = tmp_path / "nowindow.tq"
        path.write_text(SIMPLE_QUERY.replace("window 10\n", ""))
        assert main(["run", str(path), stream_file]) == 2
        assert "no window" in capsys.readouterr().err

    def test_run_ind_storage(self, query_file, stream_file, capsys):
        assert main(["run", query_file, stream_file, "--no-mstree",
                     "--quiet"]) == 0
        assert "2 matches" in capsys.readouterr().out

    def test_run_backend_rejects_no_mstree(self, query_file, stream_file,
                                           capsys):
        assert main(["run", query_file, stream_file, "--backend", "sjtree",
                     "--no-mstree"]) == 2
        assert "only applies to the timing backend" in \
            capsys.readouterr().err

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_run_sharded(self, mode, query_file, stream_file, capsys):
        assert main(["run", query_file, stream_file, "--quiet",
                     "--sharding", mode, "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 matches" in out
        assert f"sharding: {mode} x 2" in out

    def test_run_sharding_requires_shared_routing(self, query_file,
                                                  stream_file, capsys):
        assert main(["run", query_file, stream_file, "--sharding",
                     "thread", "--routing", "fanout"]) == 2
        assert "requires --routing shared" in capsys.readouterr().err

    def test_run_rejects_nonpositive_shards(self, query_file, stream_file,
                                            capsys):
        assert main(["run", query_file, stream_file, "--shards", "0"]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_run_rejects_shards_without_sharding(self, query_file,
                                                 stream_file, capsys):
        assert main(["run", query_file, stream_file, "--shards", "4"]) == 2
        err = capsys.readouterr().err
        assert "--shards needs --sharding thread or process" in err

    def test_run_default_shard_count_still_applies(self, query_file,
                                                   stream_file, capsys):
        # No explicit --shards: sharded runs get the default of 4.
        assert main(["run", query_file, stream_file, "--quiet",
                     "--sharding", "thread"]) == 0
        assert "sharding: thread x 4" in capsys.readouterr().out

    def test_perf_smoke_rejects_unknown_suite(self, capsys):
        from repro.bench.perf_smoke import main as bench_main
        with pytest.raises(SystemExit) as excinfo:
            bench_main(["--suite", "nosuch"])
        assert excinfo.value.code == 2
        assert "invalid choice: 'nosuch'" in capsys.readouterr().err

    def test_run_duplicates_count(self, query_file, tmp_path, capsys):
        stream = tmp_path / "dups.csv"
        stream.write_text(
            "src,dst,timestamp,src_label,dst_label,label,edge_id\n"
            "x1,y1,1.0,A,B,,flow1\n"
            "y1,z1,2.0,B,A,,flow2\n"
            "y1,z2,3.0,B,A,,flow2\n")     # in-window duplicate flow id
        assert main(["run", query_file, str(stream), "--quiet",
                     "--duplicates", "count"]) == 0
        out = capsys.readouterr().out
        assert "1 matches" in out
        assert "1 duplicate arrivals skipped" in out


class TestGenerate:
    @pytest.mark.parametrize("dataset", ["netflow", "wikitalk", "lsbench"])
    def test_generate_writes_readable_csv(self, dataset, tmp_path, capsys):
        out_path = str(tmp_path / f"{dataset}.csv")
        assert main(["generate", dataset, "50", out_path,
                     "--seed", "3"]) == 0
        assert os.path.exists(out_path)
        edges = list(read_stream(out_path))
        assert len(edges) == 50
        assert "wrote 50 edges" in capsys.readouterr().out

    def test_generated_stream_runs_through_query(self, tmp_path, capsys):
        stream_path = str(tmp_path / "flow.csv")
        main(["generate", "netflow", "200", stream_path])
        query_path = tmp_path / "fig1.tq"
        query_path.write_text(FIG1_QUERY)
        assert main(["run", str(query_path), stream_path, "--quiet"]) == 0
        assert "processed 200 edges" in capsys.readouterr().out
