"""Docs-site sanity: autodoc targets import, and the Sphinx build is
warning-free where the toolchain is installed.

The full ``sphinx-build -W`` runs in the CI ``docs`` job; these tests
keep the cheap invariants in the tier-1 suite so a rename that would
break the docs build fails close to the change, and run the real build
when sphinx + myst-parser happen to be importable (as in the docs job's
environment).
"""

import importlib
import os
import re
import subprocess
import sys

import pytest

DOCS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "docs")


def automodule_targets():
    targets = []
    for name in os.listdir(DOCS_DIR):
        if not name.endswith(".rst"):
            continue
        with open(os.path.join(DOCS_DIR, name), encoding="utf-8") as handle:
            targets.extend(re.findall(
                r"^\.\. automodule:: (\S+)", handle.read(), re.MULTILINE))
    return targets


class TestDocsTree:
    def test_core_pages_exist(self):
        for page in ("conf.py", "index.md", "architecture.md",
                     "configuration.md", "api.rst"):
            assert os.path.exists(os.path.join(DOCS_DIR, page)), page

    def test_autodoc_targets_import(self):
        targets = automodule_targets()
        assert "repro.api" in targets
        assert "repro.sinks" in targets
        assert "repro.core.decomposition" in targets
        assert "repro.concurrency.sharding" in targets
        for target in targets:
            importlib.import_module(target)

    def test_index_toctree_covers_pages(self):
        with open(os.path.join(DOCS_DIR, "index.md"),
                  encoding="utf-8") as handle:
            index = handle.read()
        for doc in ("architecture", "configuration", "api"):
            assert f"\n{doc}\n" in index, f"{doc} missing from toctree"

    def test_sphinx_build_is_warning_free(self, tmp_path):
        for module in ("sphinx", "myst_parser"):
            if importlib.util.find_spec(module) is None:
                pytest.skip(f"{module} not installed (docs CI job runs "
                            "the real build)")
        result = subprocess.run(
            [sys.executable, "-m", "sphinx", "-W", "-b", "html",
             DOCS_DIR, str(tmp_path / "out")],
            capture_output=True, text=True)
        assert result.returncode == 0, result.stdout + result.stderr
