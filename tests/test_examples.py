"""Smoke tests keeping the shipped examples runnable.

Each example is self-checking (asserts its expected outcome); these tests
execute the fast ones in-process so a library change that breaks an example
fails CI rather than the README.  The slower, stream-heavy examples
(social_stream_monitoring, monitoring_service) are exercised at reduced
scale through the same entry points they wrap; all five also run headless
at full scale in the CI examples-smoke step.
"""

import os
import runpy
import sys

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")


def run_example(name: str, capsys, argv=()) -> str:
    path = os.path.join(EXAMPLES_DIR, name)
    old_argv = sys.argv
    sys.argv = [path, *argv]
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "NEW MATCH" in out
        assert "decomposition" in out

    def test_credit_card_fraud(self, capsys):
        out = run_example("credit_card_fraud.py", capsys)
        assert "time-constrained monitor: 2 alert(s)" in out
        assert "1 false positive(s) avoided" in out

    def test_cyber_attack_detection(self, capsys):
        out = run_example("cyber_attack_detection.py", capsys)
        assert "EXFILTRATION PATTERN DETECTED" in out
        assert "1 alert(s) raised" in out

    def test_monitoring_service_sharded(self, capsys):
        out = run_example(
            "monitoring_service.py", capsys,
            argv=["--shards", "2", "--sharding", "thread",
                  "--edges", "1200"])
        assert "alert totals: {'exfiltration': 1}" in out
        assert "2 queries on 2 thread shard(s)" in out

    def test_monitoring_service_unsharded(self, capsys):
        out = run_example("monitoring_service.py", capsys,
                          argv=["--shards", "0", "--edges", "1200"])
        assert "alert totals: {'exfiltration': 1}" in out

    def test_query_files_parse_and_plan(self):
        from repro.core.plan import explain
        from repro.io.dsl import parse_query
        queries_dir = os.path.join(EXAMPLES_DIR, "queries")
        files = [f for f in os.listdir(queries_dir) if f.endswith(".tq")]
        assert len(files) >= 2
        for filename in files:
            with open(os.path.join(queries_dir, filename),
                      encoding="utf-8") as handle:
                query, window = parse_query(handle.read())
            assert window is not None
            plan = explain(query)
            assert plan.k >= 1
