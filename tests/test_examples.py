"""Smoke tests keeping the shipped examples runnable.

Each example is self-checking (asserts its expected outcome); these tests
execute the fast ones in-process so a library change that breaks an example
fails CI rather than the README.  The slower, stream-heavy examples
(social_stream_monitoring, monitoring_service) are exercised at reduced
scale through the same entry points they wrap.
"""

import os
import runpy

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")


def run_example(name: str, capsys) -> str:
    path = os.path.join(EXAMPLES_DIR, name)
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "NEW MATCH" in out
        assert "decomposition" in out

    def test_credit_card_fraud(self, capsys):
        out = run_example("credit_card_fraud.py", capsys)
        assert "time-constrained monitor: 2 alert(s)" in out
        assert "1 false positive(s) avoided" in out

    def test_cyber_attack_detection(self, capsys):
        out = run_example("cyber_attack_detection.py", capsys)
        assert "EXFILTRATION PATTERN DETECTED" in out
        assert "1 alert(s) raised" in out

    def test_query_files_parse_and_plan(self):
        from repro.core.plan import explain
        from repro.io.dsl import parse_query
        queries_dir = os.path.join(EXAMPLES_DIR, "queries")
        files = [f for f in os.listdir(queries_dir) if f.endswith(".tq")]
        assert len(files) >= 2
        for filename in files:
            with open(os.path.join(queries_dir, filename),
                      encoding="utf-8") as handle:
                query, window = parse_query(handle.read())
            assert window is not None
            plan = explain(query)
            assert plan.k >= 1
