"""The deterministic fault-injection registry (repro.faults)."""

import pytest

from repro import faults
from repro.faults import (
    KINDS, SITES, FaultError, FaultPlan, FaultSpec, InjectedFault,
)


class TestSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultError, match="unknown fault site"):
            FaultSpec(site="sink.wrte", kind="crash", rate=0.5).validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultSpec(site="sink.write", kind="explode", rate=0.5).validate()

    def test_exactly_one_trigger_required(self):
        with pytest.raises(FaultError, match="exactly one trigger"):
            FaultSpec(site="sink.write", kind="crash").validate()
        with pytest.raises(FaultError, match="exactly one trigger"):
            FaultSpec(site="sink.write", kind="crash",
                      rate=0.5, every=2).validate()

    def test_rate_bounds(self):
        with pytest.raises(FaultError, match="rate"):
            FaultSpec(site="sink.write", kind="crash", rate=1.5).validate()

    def test_registry_constants(self):
        assert "checkpoint.write" in SITES
        assert set(KINDS) == {"crash", "delay", "io_error", "kill_worker"}


class TestParsing:
    def test_compact_form(self):
        plan = FaultPlan.parse(
            "seed=7;sink.write=io_error:0.01;"
            "shard.rpc.recv=kill_worker:at:40;queue.put=crash:every:3:2")
        assert plan.seed == 7
        by_site = {spec.site: spec for spec in plan.specs}
        assert by_site["sink.write"].rate == 0.01
        assert by_site["shard.rpc.recv"].at == 40
        assert by_site["queue.put"].every == 3
        assert by_site["queue.put"].limit == 2

    def test_json_form(self):
        plan = FaultPlan.parse(
            '{"seed": 3, "inject": [{"site": "tailer.read", '
            '"kind": "io_error", "at": 2}]}')
        assert plan.seed == 3 and plan.specs[0].site == "tailer.read"

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(FaultError, match="unknown"):
            FaultPlan.from_dict({"seeed": 1})
        with pytest.raises(FaultError, match="unknown fault spec keys"):
            FaultPlan.from_dict({"inject": [
                {"site": "sink.write", "kind": "crash", "rte": 0.5}]})

    def test_parse_errors_are_descriptive(self):
        with pytest.raises(FaultError, match="no '='"):
            FaultPlan.parse("sink.write")
        with pytest.raises(FaultError, match="needs site=kind:trigger"):
            FaultPlan.parse("sink.write=crash")
        with pytest.raises(FaultError, match="bad trigger"):
            FaultPlan.parse("sink.write=crash:soon")

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({"REPRO_FAULTS": ""}) is None
        plan = FaultPlan.from_env(
            {"REPRO_FAULTS": "seed=1;queue.get=delay:at:1"})
        assert plan is not None and plan.specs[0].kind == "delay"

    def test_describe_round_trips_the_shape(self):
        text = "seed=7;sink.write=io_error:0.01;queue.put=crash:at:3"
        plan = FaultPlan.parse(text)
        assert plan.describe() == [
            "sink.write=io_error:rate:0.01", "queue.put=crash:at:3"]


class TestFiring:
    def test_at_trigger_fires_exactly_once(self):
        plan = FaultPlan.parse("queue.put=crash:at:3")
        fired = 0
        for _ in range(10):
            try:
                plan.fire("queue.put")
            except InjectedFault:
                fired += 1
        assert fired == 1
        assert plan.report()["queue.put"] == {"calls": 10, "fires": 1}

    def test_every_trigger_with_limit(self):
        plan = FaultPlan.parse("queue.put=io_error:every:2:2")
        failures = 0
        for _ in range(10):
            try:
                plan.fire("queue.put")
            except OSError:
                failures += 1
        assert failures == 2        # every 2nd call, capped at 2 fires

    def test_rate_trigger_is_deterministic_per_seed(self):
        def firing_calls(seed):
            plan = FaultPlan.parse(f"seed={seed};sink.write=crash:0.3")
            hits = []
            for i in range(200):
                try:
                    plan.fire("sink.write")
                except InjectedFault:
                    hits.append(i)
            return hits

        assert firing_calls(7) == firing_calls(7)
        assert firing_calls(7) != firing_calls(8)

    def test_kill_worker_uses_the_kill_context(self):
        plan = FaultPlan.parse("shard.rpc.send=kill_worker:at:1")
        killed = []
        plan.fire("shard.rpc.send", kill=lambda: killed.append(True))
        assert killed == [True]

    def test_kill_worker_without_context_degrades_to_crash(self):
        plan = FaultPlan.parse("sink.write=kill_worker:at:1")
        with pytest.raises(InjectedFault):
            plan.fire("sink.write")

    def test_unlisted_site_never_fires(self):
        plan = FaultPlan.parse("sink.write=crash:at:1")
        plan.fire("queue.put")      # no spec at this site: a no-op


class TestInstallation:
    def test_module_fire_is_noop_without_plan(self):
        assert faults.current() is None
        faults.fire("sink.write")   # must not raise

    def test_active_restores_previous_plan(self):
        outer = FaultPlan.parse("queue.put=crash:at:99")
        inner = FaultPlan.parse("queue.get=crash:at:99")
        faults.install(outer)
        try:
            with faults.active(inner):
                assert faults.current() is inner
            assert faults.current() is outer
        finally:
            faults.install(None)
        assert faults.current() is None

    def test_active_fires_through_module_hook(self):
        plan = FaultPlan.parse("tailer.read=io_error:at:1")
        with faults.active(plan):
            with pytest.raises(OSError, match="injected I/O error"):
                faults.fire("tailer.read")
        assert plan.report()["tailer.read"]["fires"] == 1
