"""MultiQueryMatcher: fan-out, live registration, callbacks."""

import pytest

from repro import QueryGraph, TimingMatcher
from repro.multi import MultiQueryMatcher

from .conftest import fig3_stream, fig5_query, path_query, make_edge


def ab_query():
    q = QueryGraph()
    q.add_vertex("x", "a")
    q.add_vertex("y", "b")
    q.add_edge("e", "x", "y")
    return q


class TestRegistration:
    def test_register_and_names(self):
        multi = MultiQueryMatcher(window=9.0)
        multi.register("fig5", fig5_query())
        multi.register("ab", ab_query())
        assert sorted(multi.names()) == ["ab", "fig5"]
        assert "fig5" in multi and len(multi) == 2

    def test_duplicate_name_rejected(self):
        multi = MultiQueryMatcher(window=9.0)
        multi.register("q", ab_query())
        with pytest.raises(ValueError):
            multi.register("q", ab_query())

    def test_deregister(self):
        multi = MultiQueryMatcher(window=9.0)
        multi.register("q", ab_query())
        multi.deregister("q")
        assert len(multi) == 0
        with pytest.raises(KeyError):
            multi.deregister("q")

    def test_window_validation(self):
        with pytest.raises(ValueError):
            MultiQueryMatcher(window=0)

    def test_per_query_window_override(self):
        multi = MultiQueryMatcher(window=9.0)
        matcher = multi.register("q", ab_query(), window=2.0)
        assert matcher.window.duration == 2.0


class TestFanOut:
    def test_results_tagged_with_query_name(self):
        multi = MultiQueryMatcher(window=9.0)
        multi.register("fig5", fig5_query())
        multi.register("ab", ab_query())
        tagged = []
        for edge in fig3_stream():
            tagged.extend(multi.push(edge))
        names = [name for name, _ in tagged]
        assert names.count("fig5") == 1       # the paper's match at t=8
        assert names.count("ab") == 2         # a2→b3 (t=6) and a1→b3 (t=8)

    def test_matches_equal_individual_engines(self):
        solo = TimingMatcher(fig5_query(), 9.0)
        multi = MultiQueryMatcher(window=9.0)
        multi.register("fig5", fig5_query())
        solo_matches, multi_matches = [], []
        for edge in fig3_stream():
            solo_matches.extend(solo.push(edge))
            multi_matches.extend(m for _, m in multi.push(edge))
        assert set(solo_matches) == set(multi_matches)

    def test_callbacks_invoked(self):
        seen = []
        multi = MultiQueryMatcher(window=9.0)
        multi.register("ab", ab_query(),
                       callback=lambda name, m: seen.append((name, m)))
        for edge in fig3_stream():
            multi.push(edge)
        assert len(seen) == 2
        assert all(name == "ab" for name, _ in seen)

    def test_timestamps_must_increase_across_queries(self):
        multi = MultiQueryMatcher(window=9.0)
        multi.register("ab", ab_query())
        multi.push(make_edge("a1", "b1", 5.0))
        with pytest.raises(ValueError):
            multi.push(make_edge("a1", "b1", 5.0))


class TestLiveRegistration:
    def test_midstream_registration_sees_only_future(self):
        multi = MultiQueryMatcher(window=9.0)
        stream = fig3_stream()
        for edge in stream[:7]:
            multi.push(edge)
        multi.register("fig5", fig5_query())
        late = []
        for edge in stream[7:]:
            late.extend(multi.push(edge))
        # σ1..σ7 were never seen, so the t=8 match cannot be assembled.
        assert late == []

    def test_advance_time_drains_all(self):
        multi = MultiQueryMatcher(window=9.0)
        multi.register("fig5", fig5_query())
        multi.register("chain", path_query(2, timing="chain"))
        for edge in fig3_stream():
            multi.push(edge)
        multi.advance_time(100.0)
        assert multi.space_cells() == 0
        assert all(count == 0 for count in multi.result_counts().values())

    def test_stats_per_query(self):
        multi = MultiQueryMatcher(window=9.0)
        multi.register("fig5", fig5_query())
        for edge in fig3_stream():
            multi.push(edge)
        stats = multi.stats()
        # 9 of the 10 arrivals: σ10 (d5→e7) hits no (src, dst) label pair
        # of Q, so predicate routing never delivers it to the engine.
        assert stats["fig5"]["edges_seen"] == 9
        assert stats["fig5"]["matches_emitted"] == 1
