"""Checkpoint/restore: a resumed engine behaves as if never interrupted."""

import io

import pytest

from repro import TimingMatcher
from repro.persistence import (
    CheckpointError, load_checkpoint, save_checkpoint,
)

from .conftest import fig3_stream, fig5_query, path_query, random_stream


class TestRoundTrip:
    def test_restore_equals_continuous_run(self, tmp_path):
        stream = random_stream(21, 200, 8, labels="abcdef")
        half = len(stream) // 2
        path = str(tmp_path / "engine.ckpt")

        continuous = TimingMatcher(fig5_query(), 5.0)
        continuous_matches = []
        for edge in stream:
            continuous_matches.extend(continuous.push(edge))

        interrupted = TimingMatcher(fig5_query(), 5.0)
        matches = []
        for edge in stream[:half]:
            matches.extend(interrupted.push(edge))
        save_checkpoint(interrupted, path)
        resumed = load_checkpoint(path)
        for edge in stream[half:]:
            matches.extend(resumed.push(edge))

        assert set(matches) == set(continuous_matches)
        assert set(resumed.current_matches()) == \
            set(continuous.current_matches())
        assert resumed.store_profile() == continuous.store_profile()

    def test_deep_mstree_store_checkpoints_without_recursion(self, tmp_path):
        """An MS-tree level holds its nodes on an intrusive linked list;
        naive pickling would recurse node→next→next… and blow the
        recursion limit on any realistically sized store (thousands of
        stored partials).  Regression: checkpoint a store far deeper than
        the default recursion limit and resume it."""
        stream = random_stream(5, 3000, 6, labels="ab")
        matcher = TimingMatcher(path_query(2, labels="ab"), 1e9)
        # Window spans the whole stream: nothing ever expires.
        for edge in stream:
            matcher.push(edge)
        # Several pickle frames per linked node: ~900 chained nodes blow
        # the default 1000-frame recursion limit many times over.
        assert matcher.store_profile()["L1^1"] > 800
        path = str(tmp_path / "deep.ckpt")
        save_checkpoint(matcher, path)          # must not RecursionError
        resumed = load_checkpoint(path)
        assert resumed.store_profile() == matcher.store_profile()
        assert resumed.result_count() == matcher.result_count()

    def test_wildcard_labels_survive_pickling(self, tmp_path):
        """ANY is a singleton compared with ``is`` — restoring must keep
        wildcard matching working."""
        from repro.datasets import (
            exfiltration_attack_query, generate_netflow_stream, inject_attack,
        )
        stream = inject_attack(generate_netflow_stream(800, seed=4))
        matcher = TimingMatcher(exfiltration_attack_query(), 30.0)
        edges = list(stream)
        midpoint = len(edges) // 3
        for edge in edges[:midpoint]:
            matcher.push(edge)
        buffer = io.BytesIO()
        save_checkpoint(matcher, buffer)
        buffer.seek(0)
        resumed = load_checkpoint(buffer)
        detections = []
        for edge in edges[midpoint:]:
            detections.extend(resumed.push(edge))
        assert len(detections) == 1

    def test_independent_storage_checkpoint(self, tmp_path):
        path = str(tmp_path / "ind.ckpt")
        matcher = TimingMatcher(fig5_query(), 9.0, use_mstree=False)
        for edge in fig3_stream()[:8]:
            matcher.push(edge)
        save_checkpoint(matcher, path)
        resumed = load_checkpoint(path)
        assert resumed.result_count() == matcher.result_count() == 1


class TestEnvelope:
    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        import pickle
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(CheckpointError, match="not a timingsubg"):
            load_checkpoint(str(path))

    def test_version_mismatch(self, tmp_path):
        import pickle
        from repro.persistence import _MAGIC
        path = tmp_path / "old.ckpt"
        path.write_bytes(pickle.dumps(
            {"magic": _MAGIC, "version": 0, "matcher": None}))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(str(path))

    def test_wrong_payload_type(self, tmp_path):
        import pickle
        from repro.persistence import _MAGIC, CHECKPOINT_VERSION
        path = tmp_path / "bad.ckpt"
        path.write_bytes(pickle.dumps(
            {"magic": _MAGIC, "version": CHECKPOINT_VERSION,
             "matcher": "nope"}))
        with pytest.raises(CheckpointError, match="TimingMatcher"):
            load_checkpoint(str(path))
