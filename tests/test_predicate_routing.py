"""Differential property suite for trie-compiled predicate routing.

PR 10 generalizes session routing from exact label-triple equality to
label predicates (``Prefix``/``ANY``), resolved per arrival by a
per-position prefix trie instead of a scan over all Q queries.  Routing
is a performance transformation: a trie-routed ``routing="shared"``
session must produce ``(name, match)`` multisets identical to the
brute-force ``routing="fanout"`` twin — across random label alphabets,
random prefix/wildcard/exact query mixes, both Timing storages, time-
and count-based windows, register/deregister churn, and every sharding
mode (``none``/``thread``/``process``, both shard transports via
``REPRO_TEST_TRANSPORT`` like the sharded differential suite).

Also pinned here, per the PR 10 satellites: the previously untested
``ANY``-labelled (wildcard) edges through shared-window routing and
sharded facades, and checkpoint round-trips of predicate-heavy sessions
(including the corrupt-envelope path).
"""

import os
import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ANY, CountSlidingWindow, EngineConfig, Prefix, QueryGraph, Session,
    ShardedSession, StreamEdge, TimingMatcher,
)
from repro.persistence import CheckpointCorruptError, load_session

TRANSPORT = os.environ.get("REPRO_TEST_TRANSPORT")

VLABELS = ("srv0", "srv1", "db0", "db1", "h2")
VPREFIXES = ("s", "srv", "db", "h")
ELABELS = (4480, 4481, 4499, 80, 6667, "44x", "448", "tcp", 9000)
EPREFIXES = ("4", "44", "448", "9", "t")


def predicate_stream(seed, n, *, n_vertices=10, dt=0.4, id_pool=None):
    """Seeded stream whose labels live in a prefix-rich universe (ints
    and strings sharing decimal prefixes), so prefix predicates have
    real selectivity to discriminate on."""
    rng = random.Random(seed)
    t = 0.0
    edges = []
    for i in range(n):
        t += rng.random() * dt + 0.01
        u = rng.randrange(n_vertices)
        v = rng.randrange(n_vertices)
        while v == u:
            v = rng.randrange(n_vertices)
        edge_id = f"id{i % id_pool}" if id_pool else None
        edges.append(StreamEdge(
            f"d{u}", f"d{v}", src_label=VLABELS[u % len(VLABELS)],
            dst_label=VLABELS[v % len(VLABELS)], timestamp=round(t, 3),
            label=rng.choice(ELABELS), edge_id=edge_id))
    return edges


def random_vlabel(rng):
    r = rng.random()
    if r < 0.25:
        return ANY
    if r < 0.55:
        return Prefix(rng.choice(VPREFIXES))
    return rng.choice(VLABELS)


def random_elabel(rng):
    r = rng.random()
    if r < 0.2:
        return ANY
    if r < 0.55:
        return Prefix(rng.choice(EPREFIXES))
    return rng.choice(ELABELS)


def random_predicate_query(rng, max_edges=2):
    """A timing-chain path whose labels mix exact / prefix / any."""
    n_edges = rng.randint(1, max_edges)
    q = QueryGraph()
    for i in range(n_edges + 1):
        q.add_vertex(f"v{i}", random_vlabel(rng))
    for i in range(n_edges):
        q.add_edge(f"e{i}", f"v{i}", f"v{i + 1}", label=random_elabel(rng))
    if n_edges > 1:
        q.add_timing_chain(*[f"e{i}" for i in range(n_edges)])
    return q


def random_query_set(seed, n_queries=8):
    rng = random.Random(seed)
    return {f"q{i}": random_predicate_query(rng) for i in range(n_queries)}


def assert_twins_equivalent(shared, fanout):
    assert shared.result_counts() == fanout.result_counts()
    for name in fanout.names():
        sm, fm = shared.matcher(name), fanout.matcher(name)
        assert Counter(sm.current_matches()) == \
            Counter(fm.current_matches()), name
        if isinstance(sm, TimingMatcher) and isinstance(fm, TimingMatcher):
            assert sm.space_cells() == fm.space_cells(), name


class TestTrieVersusFanout:
    @pytest.mark.parametrize("storage", ["mstree", "independent"])
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_time_windows_random_mixes(self, storage, seed):
        results = {}
        sessions = {}
        for routing in ("shared", "fanout"):
            session = Session(window=5.0, config=EngineConfig(
                storage=storage, routing=routing))
            for name, query in random_query_set(seed).items():
                session.register(name, query)
            results[routing] = Counter(
                session.push_many(predicate_stream(seed, 250)))
            sessions[routing] = session
        assert results["shared"] == results["fanout"]
        assert_twins_equivalent(sessions["shared"], sessions["fanout"])

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_count_windows_random_mixes(self, seed):
        results = {}
        for routing in ("shared", "fanout"):
            session = Session(window=lambda: CountSlidingWindow(30),
                              routing=routing)
            for name, query in random_query_set(seed).items():
                session.register(name, query)
            results[routing] = Counter(
                session.push_many(predicate_stream(seed, 250)))
        assert results["shared"] == results["fanout"]

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_register_deregister_churn(self, seed):
        """Predicate queries registered and deregistered mid-stream:
        trie bookkeeping (token removal, node pruning) must keep the
        remaining queries' answers identical to fanout's."""
        rng = random.Random(seed)
        queries = random_query_set(seed, n_queries=10)
        phases = [list(queries)[:6], list(queries)[6:]]
        drop_order = rng.sample(phases[0], 3)
        edges = predicate_stream(seed, 300)
        chunks = [edges[:100], edges[100:200], edges[200:]]
        results = {}
        stats = {}
        for routing in ("shared", "fanout"):
            session = Session(window=5.0, routing=routing)
            for name in phases[0]:
                session.register(name, random_query_set(seed, 10)[name])
            tagged = list(session.push_many(chunks[0]))
            for name in drop_order:
                session.deregister(name)
            for name in phases[1]:
                session.register(name, random_query_set(seed, 10)[name])
            tagged += session.push_many(chunks[1])
            tagged += session.push_many(chunks[2])
            results[routing] = Counter(tagged)
            stats[routing] = session.session_stats()
        assert results["shared"] == results["fanout"]
        # Deregistration pruned the dropped queries' trie entries.
        live_pred = stats["shared"]["predicate_entries"]
        solo = Session(window=5.0)
        for name in set(phases[0]) - set(drop_order) | set(phases[1]):
            solo.register(name, random_query_set(seed, 10)[name])
        assert live_pred == solo.session_stats()["predicate_entries"]


def make_sharded(mode, **kwargs):
    if mode == "process" and TRANSPORT:
        kwargs.setdefault("transport", TRANSPORT)
    return Session(sharding=mode, shards=3, **kwargs)


class TestShardedPredicateRouting:
    """Predicate routing must be consistent across the facade's shard
    router, each worker's own session router, and the shm transport's
    interned labels — pinned against the unsharded twin."""

    @pytest.mark.parametrize("mode", ["thread", "process"])
    @pytest.mark.parametrize("seed", [11, 29])
    def test_sharded_equals_unsharded(self, mode, seed):
        queries = random_query_set(seed)
        edges = predicate_stream(seed, 250)
        unsharded = Session(window=5.0)
        for name, query in queries.items():
            unsharded.register(name, query)
        expected = Counter(unsharded.push_many(edges))
        sharded = make_sharded(mode, window=5.0)
        try:
            for name, query in random_query_set(seed).items():
                sharded.register(name, query)
            got = Counter(sharded.push_many(edges))
            assert got == expected
            assert sharded.result_counts() == unsharded.result_counts()
        finally:
            sharded.close()

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_sharded_churn(self, mode):
        seed = 47
        queries = random_query_set(seed, 10)
        edges = predicate_stream(seed, 200)
        results = {}
        for kind in ("none", mode):
            session = Session(window=5.0) if kind == "none" \
                else make_sharded(kind, window=5.0)
            try:
                for name in list(queries)[:7]:
                    session.register(name, random_query_set(seed, 10)[name])
                tagged = list(session.push_many(edges[:100]))
                for name in list(queries)[:3]:
                    session.deregister(name)
                for name in list(queries)[7:]:
                    session.register(name, random_query_set(seed, 10)[name])
                tagged += session.push_many(edges[100:])
                results[kind] = Counter(tagged)
            finally:
                if isinstance(session, ShardedSession):
                    session.close()
        assert results[mode] == results["none"]


def wildcard_query(n_edges=2):
    """The satellite's regression target: bare ANY edge labels (the
    historical `_Wildcard`) with concrete endpoints."""
    q = QueryGraph()
    for i in range(n_edges + 1):
        q.add_vertex(f"v{i}", VLABELS[i % len(VLABELS)])
    for i in range(n_edges):
        q.add_edge(f"e{i}", f"v{i}", f"v{i + 1}", label=ANY)
    q.add_timing_chain(*[f"e{i}" for i in range(n_edges)])
    return q


def all_any_query():
    q = QueryGraph()
    q.add_vertex("a", ANY)
    q.add_vertex("b", ANY)
    q.add_edge("e", "a", "b", label=ANY)
    return q


class TestWildcardRoutingGap:
    """ANY-labelled query edges through the PR 3 shared-window routing
    index and the sharded facades — the previously untested corner."""

    def test_wildcard_edges_shared_equals_fanout(self):
        edges = predicate_stream(3, 300)
        results = {}
        sessions = {}
        for routing in ("shared", "fanout"):
            session = Session(window=5.0, routing=routing)
            session.register("wild2", wildcard_query(2))
            session.register("wild1", wildcard_query(1))
            session.register("allany", all_any_query())
            results[routing] = Counter(session.push_many(edges))
            sessions[routing] = session
        assert results["shared"] == results["fanout"]
        assert sum(results["shared"].values()) > 0
        assert_twins_equivalent(sessions["shared"], sessions["fanout"])
        # ANY-only queries route through the predicate router's always
        # sets now, not the generic scan residue.
        assert sessions["shared"].session_stats()["predicate_entries"] > 0

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_wildcard_edges_through_sharded_facade(self, mode):
        edges = predicate_stream(5, 250)
        unsharded = Session(window=5.0)
        unsharded.register("wild2", wildcard_query(2))
        unsharded.register("allany", all_any_query())
        expected = Counter(unsharded.push_many(edges))
        assert sum(expected.values()) > 0
        sharded = make_sharded(mode, window=5.0)
        try:
            sharded.register("wild2", wildcard_query(2))
            sharded.register("allany", all_any_query())
            got = Counter(sharded.push_many(edges))
            assert got == expected
        finally:
            sharded.close()

    def test_expiry_reaches_wildcard_members(self):
        """An ANY-edge query must hear expiries for edges it ingested:
        regression for the expiry router's predicate path."""
        session = Session(window=2.0)
        session.register("allany", all_any_query())
        edges = predicate_stream(9, 120, dt=0.3)
        session.push_many(edges)
        matcher = session.matcher("allany")
        # Every live edge is within the window — expiry delivery pruned
        # the rest (an unrouted expiry would leave stale live ids).
        horizon = session.current_time - 2.0
        assert matcher._live_edge_ids
        assert all(ts > horizon for ts in matcher._live_edge_ids.values())


class TestPredicateCheckpointRoundTrip:
    def _predicate_heavy(self, seed=13):
        session = Session(window=5.0)
        for name, query in random_query_set(seed).items():
            session.register(name, query)
        return session

    def test_save_restore_continues_identically(self, tmp_path):
        edges = predicate_stream(13, 300)
        baseline = self._predicate_heavy()
        expected = Counter(baseline.push_many(edges))
        interrupted = self._predicate_heavy()
        got = Counter(interrupted.push_many(edges[:150]))
        target = tmp_path / "pred.ckpt"
        interrupted.checkpoint(str(target))
        restored = Session.restore(str(target))
        got += Counter(restored.push_many(edges[150:]))
        assert got == expected
        assert restored.session_stats()["predicate_entries"] == \
            baseline.session_stats()["predicate_entries"]

    def test_reregister_after_restore(self, tmp_path):
        session = self._predicate_heavy()
        edges = predicate_stream(13, 150)
        session.push_many(edges[:100])
        target = tmp_path / "pred.ckpt"
        session.checkpoint(str(target))
        restored = Session.restore(str(target))
        q = QueryGraph()
        q.add_vertex("a", Prefix("srv"))
        q.add_vertex("b", ANY)
        q.add_edge("e", "a", "b", label=Prefix("44"))
        restored.register("late", q)
        tagged = restored.push_many(edges[100:])
        fresh = Counter(n for n, _ in tagged if n == "late")
        # The late query sees post-restore arrivals via the restored
        # (then re-extended) predicate router.
        manual = sum(
            1 for e in edges[100:]
            if str(e.src_label).startswith("srv")
            and str(e.label).startswith("44"))
        assert fresh["late"] == manual
        restored.deregister("late")
        assert restored.session_stats()["predicate_entries"] == \
            self._predicate_heavy().session_stats()["predicate_entries"]

    def test_corrupt_envelope_still_raises(self, tmp_path):
        session = self._predicate_heavy()
        session.push_many(predicate_stream(13, 50))
        target = tmp_path / "pred.ckpt"
        session.checkpoint(str(target))
        blob = bytearray(target.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptError):
            load_session(str(target))
