"""Session facade: registration, fan-out, sinks, ingestion, checkpointing.

The acceptance round-trip for the API redesign lives here: register a DSL
query → push edges → sink receives matches → checkpoint → restore →
identical ``current_matches()``.
"""

import io
import json

import pytest

from repro import (
    EngineConfig, JSONLSink, ListSink, Session, StreamEdge, TimingMatcher,
)
from repro.io.csv_stream import write_stream
from repro.persistence import load_session, save_session

from .conftest import fig3_stream, fig5_query, make_edge, path_query

TWO_HOP_DSL = """
# two-hop chain with a timing order
vertex a A
vertex b B
vertex c C
edge e1 a -> b
edge e2 b -> c
order e1 < e2
window 6
"""


def two_hop_stream():
    rows = [("a1", "b1", 1.0, "A", "B"), ("b1", "c1", 2.0, "B", "C"),
            ("a2", "b1", 3.0, "A", "B"), ("b1", "c2", 4.0, "B", "C")]
    return [StreamEdge(src, dst, src_label=sl, dst_label=dl, timestamp=ts)
            for src, dst, ts, sl, dl in rows]


class TestRegistration:
    def test_register_from_query_graph(self):
        session = Session(window=9.0)
        engine = session.register("fig5", fig5_query())
        assert "fig5" in session and len(session) == 1
        assert session.matcher("fig5") is engine

    def test_register_from_dsl_text_uses_window_hint(self):
        session = Session()
        engine = session.register("chain", TWO_HOP_DSL)
        assert engine.window.duration == 6.0

    def test_explicit_window_overrides_dsl_hint(self):
        session = Session()
        engine = session.register("chain", TWO_HOP_DSL, window=2.5)
        assert engine.window.duration == 2.5

    def test_register_from_file(self, tmp_path):
        path = tmp_path / "chain.tq"
        path.write_text(TWO_HOP_DSL)
        session = Session()
        engine = session.register_file("chain", str(path))
        assert engine.window.duration == 6.0

    def test_no_window_anywhere_is_an_error(self):
        session = Session()
        with pytest.raises(ValueError, match="no window"):
            session.register("fig5", fig5_query())

    def test_duplicate_name_rejected(self):
        session = Session(window=9.0)
        session.register("q", fig5_query())
        with pytest.raises(ValueError, match="already registered"):
            session.register("q", fig5_query())

    def test_deregister(self):
        session = Session(window=9.0)
        session.register("q", fig5_query())
        session.deregister("q")
        assert len(session) == 0
        with pytest.raises(KeyError):
            session.deregister("q")

    def test_nonpositive_default_window_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Session(window=0)

    def test_shared_policy_object_default_rejected(self):
        from repro import CountSlidingWindow
        with pytest.raises(TypeError, match="window factory"):
            Session(window=CountSlidingWindow(10))

    def test_shared_policy_object_across_registers_rejected(self):
        from repro import CountSlidingWindow
        shared = CountSlidingWindow(10)
        session = Session()
        session.register("a", path_query(1, labels="ab"), window=shared)
        with pytest.raises(ValueError, match="cannot share"):
            session.register("b", path_query(1, labels="ab"),
                             window=shared)

    def test_window_factory_gives_each_engine_its_own(self):
        from repro import CountSlidingWindow
        session = Session(window=lambda: CountSlidingWindow(10))
        a = session.register("a", path_query(1, labels="ab"))
        b = session.register("b", path_query(1, labels="ab"))
        assert a.window is not b.window
        session.push(make_edge("a1", "b1", 1.0))    # must not collide


class TestBackends:
    def test_all_builtin_backends_agree(self):
        session = Session(window=6.0)
        for backend in ("timing", "sjtree", "incmat", "naive"):
            session.register(backend, TWO_HOP_DSL, window=6.0,
                             backend=backend)
        sink = session.add_sink(ListSink())
        session.push_many(two_hop_stream())
        per_backend = {name: set(sink.for_query(name))
                       for name in session.names()}
        reference = per_backend.pop("timing")
        assert len(reference) == 3
        for name, matches in per_backend.items():
            assert matches == reference, name

    @pytest.mark.parametrize("backend", ["timing", "sjtree", "incmat",
                                         "naive"])
    def test_per_query_duplicate_policy_overrides_session(self, backend):
        session = Session(window=6.0, duplicate_policy="raise")
        engine = session.register("q", TWO_HOP_DSL, backend=backend,
                                  duplicate_policy="skip")
        assert engine.duplicate_policy == "skip"

    def test_pure_protocol_matcher_survives_push(self):
        """A factory can return any Matcher-conforming object — the
        fan-out must not assume MatcherBase internals."""
        from repro import EngineStats, Matcher

        class MinimalMatcher:
            def __init__(self):
                self.stats = EngineStats()
                self.seen = []

            def push(self, edge):
                self.seen.append(edge)
                return []

            def push_many(self, edges):
                return [m for e in edges for m in self.push(e)]

            def advance_time(self, timestamp):
                pass

            def current_matches(self):
                return []

            def result_count(self):
                return 0

            def space_cells(self):
                return 0

        session = Session(window=6.0)
        minimal = session.register(
            "min", TWO_HOP_DSL, backend=lambda q, w: MinimalMatcher())
        assert isinstance(minimal, Matcher)
        session.push_many(two_hop_stream())
        assert len(minimal.seen) == 4

    def test_factory_backend(self):
        session = Session(window=6.0)
        engine = session.register(
            "custom", TWO_HOP_DSL,
            backend=lambda q, w: TimingMatcher.from_config(
                q, w, storage="independent"))
        assert not engine.use_mstree

    def test_unknown_backend_rejected(self):
        session = Session(window=6.0)
        with pytest.raises(ValueError, match="unknown backend"):
            session.register("q", TWO_HOP_DSL, backend="quantum")

    def test_factory_backend_rejects_engine_options(self):
        session = Session(window=6.0)
        with pytest.raises(ValueError, match="factory backends"):
            session.register("q", TWO_HOP_DSL,
                             backend=lambda q, w: TimingMatcher(q, w),
                             use_mstree=False)


class TestSinksAndCallbacks:
    def test_list_sink_collects_tagged_matches(self):
        session = Session()
        session.register("chain", TWO_HOP_DSL)
        sink = session.add_sink(ListSink())
        returned = session.push_many(two_hop_stream())
        assert sink.records == returned
        assert [name for name, _ in sink.records] == ["chain"] * 3

    def test_query_filtered_sink(self):
        session = Session(window=9.0)
        session.register("fig5", fig5_query())
        session.register("ab", path_query(1, labels="ab"))
        only_fig5 = session.add_sink(ListSink(), query="fig5")
        everything = session.add_sink(ListSink())
        session.push_many(fig3_stream())
        assert {name for name, _ in everything.records} == {"fig5", "ab"}
        assert all(name == "fig5" for name, _ in only_fig5.records)
        assert only_fig5.for_query("fig5") == only_fig5.matches

    def test_deregister_drops_query_filtered_sinks(self):
        session = Session()
        session.register("chain", TWO_HOP_DSL)
        filtered = session.add_sink(ListSink(), query="chain")
        unfiltered = session.add_sink(ListSink())
        session.deregister("chain")
        session.register("chain", TWO_HOP_DSL)   # same name, fresh query
        session.push_many(two_hop_stream())
        assert len(filtered) == 0                # old sink must not revive
        assert len(unfiltered) == 3

    def test_remove_sink(self):
        session = Session()
        session.register("chain", TWO_HOP_DSL)
        sink = session.add_sink(ListSink())
        session.remove_sink(sink)
        session.push_many(two_hop_stream())
        assert len(sink) == 0
        with pytest.raises(ValueError, match="not attached"):
            session.remove_sink(sink)

    def test_set_callback_rewires_after_restore(self):
        session = Session()
        session.register("chain", TWO_HOP_DSL,
                         callback=lambda name, m: None)
        buffer = io.BytesIO()
        session.checkpoint(buffer)
        buffer.seek(0)
        restored = Session.restore(buffer)
        seen = []
        restored.set_callback("chain",
                              lambda name, m: seen.append((name, m)))
        restored.push_many(two_hop_stream())
        assert len(seen) == 3
        with pytest.raises(KeyError):
            restored.set_callback("ghost", None)

    def test_per_query_callback(self):
        seen = []
        session = Session()
        session.register("chain", TWO_HOP_DSL,
                         callback=lambda name, m: seen.append((name, m)))
        session.push_many(two_hop_stream())
        assert len(seen) == 3

    def test_jsonl_sink_round_trips(self):
        buffer = io.StringIO()
        session = Session()
        session.register("chain", TWO_HOP_DSL)
        sink = session.add_sink(JSONLSink(buffer))
        session.push_many(two_hop_stream())
        records = [json.loads(line)
                   for line in buffer.getvalue().strip().splitlines()]
        assert sink.count == len(records) == 3
        assert {r["query"] for r in records} == {"chain"}
        first = min(records, key=lambda r: r["matched_at"])
        assert first["matched_at"] == 2.0
        assert first["edges"]["e1"]["src"] == "a1"
        assert first["edges"]["e2"]["dst"] == "c1"


class TestStreaming:
    def test_lock_step_timestamps(self):
        session = Session(window=9.0)
        session.register("q", path_query(1))
        session.push(make_edge("a1", "b1", 5.0))
        with pytest.raises(ValueError, match="strictly increase"):
            session.push(make_edge("a2", "b2", 5.0))
        with pytest.raises(ValueError, match="time moves backwards"):
            session.advance_time(4.0)

    def test_ingest_counts_without_materialising(self):
        session = Session()
        session.register("chain", TWO_HOP_DSL)
        sink = session.add_sink(ListSink())
        assert session.ingest(two_hop_stream()) == 3
        assert len(sink) == 3

    def test_ingest_csv(self, tmp_path):
        path = str(tmp_path / "stream.csv")
        write_stream(two_hop_stream(), path)
        session = Session()
        session.register("chain", TWO_HOP_DSL)
        results = session.ingest_csv(path)
        assert len(results) == 3

    def test_ingest_csv_with_edge_id_column_applies_duplicate_policy(
            self, tmp_path):
        path = tmp_path / "dups.csv"
        path.write_text(
            "src,dst,timestamp,src_label,dst_label,label,edge_id\n"
            "a1,b1,1.0,A,B,,flow7\n"
            "a2,b2,2.0,A,B,,flow7\n")     # reused exporter flow id
        session = Session(window=6.0, duplicate_policy="count")
        session.register("chain", TWO_HOP_DSL)
        session.ingest_csv(str(path), collect=False)
        assert session.stats()["chain"]["edges_skipped"] == 1

    def test_write_stream_edge_ids_round_trip(self, tmp_path):
        from repro.io.csv_stream import read_stream
        path = str(tmp_path / "ids.csv")
        edges = [StreamEdge("a1", "b1", src_label="A", dst_label="B",
                            timestamp=1.0, edge_id="flow1"),
                 StreamEdge("a2", "b2", src_label="A", dst_label="B",
                            timestamp=2.0, edge_id="flow2")]
        write_stream(edges, path, edge_ids=True)
        assert [e.edge_id for e in read_stream(path)] == ["flow1", "flow2"]

    def test_ingest_csv_collect_false_returns_count(self, tmp_path):
        path = str(tmp_path / "stream.csv")
        write_stream(two_hop_stream(), path)
        session = Session()
        session.register("chain", TWO_HOP_DSL)
        sink = session.add_sink(ListSink())
        assert session.ingest_csv(path, collect=False) == 3
        assert len(sink) == 3

    def test_duplicate_raise_is_atomic_across_queries(self):
        """A rejected arrival must not be half-ingested: engines with
        shorter windows (whose bearer already expired) stay in lock-step
        with the one that raised."""
        session = Session()
        short = session.register("short", path_query(1, labels="AB"),
                                 window=5.0)
        long = session.register("long", path_query(1, labels="AB"),
                                window=50.0)
        dup = StreamEdge("a1", "b1", src_label="A", dst_label="B",
                         timestamp=0.0, edge_id="X")
        session.push(dup)
        late = StreamEdge("a2", "b2", src_label="A", dst_label="B",
                          timestamp=10.0, edge_id="X")
        # short's bearer would expire by t=10; long's is live and raises.
        with pytest.raises(ValueError, match="no query ingested"):
            session.push(late)
        # The rejection was entirely side-effect-free: windows untouched,
        # clock untouched.
        assert len(short.window) == len(long.window) == 1
        assert short.stats.edges_seen == long.stats.edges_seen == 1
        assert session.current_time == 0.0
        # A corrected feed may retry any later timestamp with a fresh id.
        retry = StreamEdge("a2", "b2", src_label="A", dst_label="B",
                           timestamp=5.5, edge_id="Y")
        session.push(retry)
        assert short.stats.edges_seen == long.stats.edges_seen == 2
        assert len(short.window) == 1          # t=0 bearer expired now
        assert len(long.window) == 2           # both arrivals in-window

    def test_session_duplicate_policy_reaches_engines(self):
        session = Session(window=6.0, duplicate_policy="count")
        session.register("chain", TWO_HOP_DSL)
        session.push(StreamEdge("a1", "b1", src_label="A", dst_label="B",
                                timestamp=1.0, edge_id="dup"))
        session.push(StreamEdge("a2", "b2", src_label="A", dst_label="B",
                                timestamp=2.0, edge_id="dup"))
        assert session.stats()["chain"]["edges_skipped"] == 1

    def test_advance_time_drains_all(self):
        session = Session()
        session.register("chain", TWO_HOP_DSL)
        session.push_many(two_hop_stream())
        session.advance_time(100.0)
        assert session.space_cells() == 0
        assert all(count == 0 for count in session.result_counts().values())


class TestCheckpointRestore:
    def test_acceptance_round_trip(self, tmp_path):
        """register DSL → push → sink receives → checkpoint → restore →
        identical current_matches()."""
        path = str(tmp_path / "session.ckpt")
        stream = two_hop_stream()

        session = Session()
        session.register("chain", TWO_HOP_DSL)
        sink = session.add_sink(ListSink())
        session.push_many(stream[:2])
        assert len(sink) == 1                      # the t=2 match arrived
        session.checkpoint(path)

        restored = Session.restore(path)
        assert restored.names() == ["chain"]
        assert restored.current_time == session.current_time
        assert set(restored.current_matches()["chain"]) == \
            set(session.current_matches()["chain"])

        # The restored session continues exactly like the uninterrupted one.
        late_sink = restored.add_sink(ListSink())
        restored_results = restored.push_many(stream[2:])
        assert restored_results == session.push_many(stream[2:])
        assert late_sink.records == restored_results
        assert set(restored.current_matches()["chain"]) == \
            set(session.current_matches()["chain"])

    def test_sinks_and_callbacks_are_not_pickled(self):
        session = Session()
        session.register("chain", TWO_HOP_DSL,
                         callback=lambda name, m: None)
        session.add_sink(ListSink())
        buffer = io.BytesIO()
        save_session(session, buffer)      # lambdas would break pickle
        buffer.seek(0)
        restored = load_session(buffer)
        assert restored._sinks == []
        assert restored._callbacks == {"chain": None}

    def test_checkpoint_with_window_factory_and_guard(self):
        """Runtime wiring (factories, guards) is dropped, not a pickle
        crash — sinks already set that precedent."""
        from repro import CountSlidingWindow
        from repro.core.guard import TraceGuard
        session = Session(window=lambda: CountSlidingWindow(10),
                          config=EngineConfig(guard=TraceGuard()))
        session.register("chain", TWO_HOP_DSL)
        buffer = io.BytesIO()
        session.checkpoint(buffer)               # lambdas/guards inside
        buffer.seek(0)
        restored = Session.restore(buffer)
        assert restored.default_window is None   # factory not captured
        assert restored.config.guard is None
        assert restored.matcher("chain").default_guard is None

    def test_mixed_backend_session_checkpoint(self):
        session = Session(window=6.0)
        session.register("timing", TWO_HOP_DSL)
        session.register("sjtree", TWO_HOP_DSL, backend="sjtree")
        session.push_many(two_hop_stream())
        buffer = io.BytesIO()
        session.checkpoint(buffer)
        buffer.seek(0)
        restored = Session.restore(buffer)
        assert restored.result_counts() == session.result_counts()

    def test_engine_checkpoint_accepts_baselines(self):
        from repro.baselines.sjtree import SJTreeMatcher
        from repro.persistence import load_checkpoint, save_checkpoint
        matcher = SJTreeMatcher(path_query(2), 6.0)
        matcher.push_many(two_hop_stream())
        buffer = io.BytesIO()
        save_checkpoint(matcher, buffer)
        buffer.seek(0)
        resumed = load_checkpoint(buffer)
        assert set(resumed.current_matches()) == \
            set(matcher.current_matches())

    def test_session_checkpoint_is_not_an_engine_checkpoint(self):
        from repro.persistence import CheckpointError, load_checkpoint
        session = Session()
        session.register("chain", TWO_HOP_DSL)
        buffer = io.BytesIO()
        session.checkpoint(buffer)
        buffer.seek(0)
        with pytest.raises(CheckpointError):
            load_checkpoint(buffer)


class TestDeprecatedMultiQueryMatcher:
    def test_is_a_session_and_warns(self):
        from repro.multi import MultiQueryMatcher
        with pytest.warns(DeprecationWarning, match="Session"):
            multi = MultiQueryMatcher(window=9.0)
        assert isinstance(multi, Session)
        multi.register("fig5", fig5_query(), use_mstree=False)
        tagged = []
        for arrival in fig3_stream():
            tagged.extend(multi.push(arrival))
        assert [name for name, _ in tagged] == ["fig5"]
