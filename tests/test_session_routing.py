"""Differential property suite: ``routing="shared"`` ≡ ``routing="fanout"``.

The shared-stream fast path (session routing index, shared window buffers,
coalesced expiry delivery) is a performance transformation — the two modes
must produce identical ``(name, match)`` multisets, identical result
counts, and identical per-engine partial-match space.  This suite streams
randomized multi-query scenarios through twin sessions and checks exactly
that, across mixed query sizes, both Timing storages, time- and
count-based windows, expiry, duplicate policies, mid-stream churn, and
checkpoint/restore.

One documented exception: shared routing judges in-window duplicate ids
against the *stream* (the shared buffer), so a query registered mid-stream
drops a replayed id it never saw the original of, where fanout's
per-matcher buffering would alert.  That refinement is pinned explicitly
in ``test_mid_stream_registrant_inherits_stream_duplicate_view``; the
differential scenarios therefore never combine mid-stream registration
with in-window id re-use.
"""

import io
import random
from collections import Counter

import pytest

from repro import (
    ANY, CountSlidingWindow, EngineConfig, QueryGraph, Session, StreamEdge,
    TimingMatcher,
)

VLABELS = "ABC"
ELABELS = ("x", "y", "z")


def labeled_stream(seed, n, *, n_vertices=12, dt=0.4, id_pool=None):
    """Seeded stream over a small population with concrete edge labels
    (so label-triple routing has something to discriminate on).  With
    ``id_pool``, edge ids repeat — exercising the duplicate policies."""
    rng = random.Random(seed)
    t = 0.0
    edges = []
    for i in range(n):
        t += rng.random() * dt + 0.01
        u = rng.randrange(n_vertices)
        v = rng.randrange(n_vertices)
        while v == u:
            v = rng.randrange(n_vertices)
        edge_id = f"id{i % id_pool}" if id_pool else None
        edges.append(StreamEdge(
            f"d{u}", f"d{v}", src_label=VLABELS[u % 3],
            dst_label=VLABELS[v % 3], timestamp=round(t, 3),
            label=rng.choice(ELABELS), edge_id=edge_id))
    return edges


def labeled_path_query(n_edges, *, vstart=0, elabels=("x",),
                       timing="chain"):
    q = QueryGraph()
    for i in range(n_edges + 1):
        q.add_vertex(f"v{i}", VLABELS[(vstart + i) % 3])
    for i in range(n_edges):
        q.add_edge(f"e{i}", f"v{i}", f"v{i + 1}",
                   label=elabels[i % len(elabels)])
    if timing == "chain":
        q.add_timing_chain(*[f"e{i}" for i in range(n_edges)])
    return q


def query_set():
    """Mixed sizes, mixed label selectivity, one wildcard-bearing query
    (always routed) — fresh QueryGraph objects on every call."""
    return {
        "p1x": labeled_path_query(1, vstart=0, elabels=("x",)),
        "p2y": labeled_path_query(2, vstart=1, elabels=("y",)),
        "p2xy": labeled_path_query(2, vstart=0, elabels=("x", "y")),
        "p3": labeled_path_query(3, vstart=2, elabels=("x", "y", "z")),
        "wild": labeled_path_query(2, vstart=0, elabels=(ANY,)),
    }


def twin_sessions(make_session):
    return {routing: make_session(routing)
            for routing in ("shared", "fanout")}


def assert_sessions_equivalent(shared, fanout):
    assert shared.result_counts() == fanout.result_counts()
    for name in fanout.names():
        sm, fm = shared.matcher(name), fanout.matcher(name)
        assert Counter(sm.current_matches()) == Counter(fm.current_matches()), name
        if isinstance(sm, TimingMatcher):
            # Identical logical partial-match space, per engine.
            assert sm.space_cells() == fm.space_cells(), name
        else:
            # Snapshot baselines drop unroutable edges from their
            # snapshots: same answers, never more memory.
            assert sm.space_cells() <= fm.space_cells(), name


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("storage", ["mstree", "independent"])
    def test_time_windows_randomized(self, storage):
        results = {}
        sessions = twin_sessions(lambda routing: Session(
            window=6.0,
            config=EngineConfig(storage=storage, routing=routing)))
        edges = labeled_stream(7, 400)
        for routing, session in sessions.items():
            for name, query in query_set().items():
                session.register(name, query)
            results[routing] = Counter(session.push_many(edges))
        assert results["shared"] == results["fanout"]
        assert sum(results["shared"].values()) > 0      # non-vacuous
        assert_sessions_equivalent(sessions["shared"], sessions["fanout"])

    def test_count_windows_randomized(self):
        results = {}
        sessions = twin_sessions(lambda routing: Session(
            window=lambda: CountSlidingWindow(40), routing=routing))
        edges = labeled_stream(11, 300)
        for routing, session in sessions.items():
            for name, query in query_set().items():
                session.register(name, query)
            results[routing] = Counter(session.push_many(edges))
        assert results["shared"] == results["fanout"]
        assert_sessions_equivalent(sessions["shared"], sessions["fanout"])

    def test_mixed_time_and_count_windows(self):
        results = {}
        sessions = twin_sessions(
            lambda routing: Session(window=5.0, routing=routing))
        edges = labeled_stream(13, 300)
        for routing, session in sessions.items():
            queries = query_set()
            session.register("p1x", queries["p1x"])
            session.register("p2y", queries["p2y"],
                             window=CountSlidingWindow(30))
            session.register("p2xy", queries["p2xy"], window=9.0)
            session.register("wild", queries["wild"],
                             window=CountSlidingWindow(30))
            results[routing] = Counter(session.push_many(edges))
        shared = sessions["shared"]
        assert results["shared"] == results["fanout"]
        assert_sessions_equivalent(shared, sessions["fanout"])
        # Same-policy queries share one buffer; distinct policies don't.
        assert len(shared._groups) == 3

    def test_baseline_backends_participate(self):
        results = {}
        sessions = twin_sessions(
            lambda routing: Session(window=4.0, routing=routing))
        edges = labeled_stream(17, 120, n_vertices=8)
        for routing, session in sessions.items():
            queries = query_set()
            session.register("timing", queries["p2xy"])
            session.register("naive", labeled_path_query(
                2, vstart=0, elabels=("x", "y")), backend="naive")
            session.register("sjtree", labeled_path_query(
                2, vstart=0, elabels=("x", "y")), backend="sjtree")
            results[routing] = Counter(session.push_many(edges))
        assert results["shared"] == results["fanout"]
        # All three backends agree with each other, too.
        by_name = {}
        for (name, match), count in results["shared"].items():
            by_name.setdefault(name, Counter())[match] += count
        assert by_name.get("timing") == by_name.get("naive") \
            == by_name.get("sjtree")
        assert_sessions_equivalent(sessions["shared"], sessions["fanout"])

    def test_drain_after_advance_time(self):
        sessions = twin_sessions(
            lambda routing: Session(window=6.0, routing=routing))
        edges = labeled_stream(19, 150)
        for session in sessions.values():
            for name, query in query_set().items():
                session.register(name, query)
            session.push_many(edges)
            session.advance_time(edges[-1].timestamp + 100.0)
        assert sessions["shared"].space_cells() == \
            sessions["fanout"].space_cells() == 0
        assert sessions["shared"].shared_window_cells() == 0


class TestWindowMemory:
    def test_shared_window_is_O_of_W_not_Q_times_W(self):
        """The headline space claim: Q same-policy queries keep ONE
        buffer under shared routing and Q copies under fanout."""
        sessions = twin_sessions(
            lambda routing: Session(window=50.0, routing=routing))
        edges = labeled_stream(23, 200)
        num_queries = 6
        for session in sessions.values():
            for i in range(num_queries):
                session.register(f"q{i}", labeled_path_query(
                    2, vstart=i % 3, elabels=(ELABELS[i % 3],)))
            session.push_many(edges)
        shared, fanout = sessions["shared"], sessions["fanout"]
        in_window = len(shared._groups[("time", 50.0)].window)
        assert in_window > 0
        assert shared.shared_window_cells() == in_window
        assert shared.window_cells() == in_window
        assert fanout.window_cells() == num_queries * in_window

    def test_non_routed_matchers_are_skipped_and_discardable(self):
        session = Session(window=50.0)      # shared by default
        session.register("p1x", labeled_path_query(1, elabels=("x",)))
        session.register("p1y", labeled_path_query(1, elabels=("y",)))
        edges = labeled_stream(29, 120)
        session.push_many(edges)
        stats = session.session_stats()
        assert stats["routing"] == "shared"
        assert stats["edges_pushed"] == len(edges)
        assert stats["skipped_matchers"] > 0
        assert stats["routed_pushes"] + stats["skipped_matchers"] == \
            2 * len(edges)
        # Routing skips exactly the label-level-discardable arrivals.
        for edge in edges[:40]:
            routed = {name for _, name in session._route_targets(edge)}
            for name in session.names():
                if name not in routed:
                    assert session.matcher(name).is_discardable(edge)


class TestDuplicatePolicies:
    @pytest.mark.parametrize("policy", ["skip", "count"])
    def test_drop_policies_agree(self, policy):
        results = {}
        sessions = twin_sessions(lambda routing: Session(
            window=3.0, duplicate_policy=policy, routing=routing))
        edges = labeled_stream(31, 250, id_pool=10)
        for routing, session in sessions.items():
            for name, query in query_set().items():
                session.register(name, query)
            results[routing] = Counter(session.push_many(edges))
        assert results["shared"] == results["fanout"]
        if policy == "count":
            # edges_seen legitimately differs (shared mode only visits
            # routed matchers) but every dropped duplicate is counted by
            # every count-policy matcher, identically in both modes.
            shared_stats = sessions["shared"].stats()
            for name, fanout_stats in sessions["fanout"].stats().items():
                assert shared_stats[name]["edges_skipped"] == \
                    fanout_stats["edges_skipped"], name
            assert fanout_stats["edges_skipped"] > 0    # non-vacuous
        assert_sessions_equivalent(sessions["shared"], sessions["fanout"])

    def test_reused_id_after_expiry_streams_identically(self):
        """An id whose previous bearer has left the window is a fresh
        arrival — including when the expiry is triggered by the re-using
        push itself (regression: the shared buffer once rejected this)."""
        results = {}
        for routing in ("shared", "fanout"):
            session = Session(window=10.0, routing=routing)
            session.register("p1x", labeled_path_query(1, elabels=("x",)))

            def flow(src, dst, ts):
                return StreamEdge(src, dst, src_label="A", dst_label="B",
                                  timestamp=ts, label="x", edge_id="flow")

            out = [session.push(flow("d0", "d1", 1.0))]
            out.append(session.push(flow("d2", "d3", 20.0)))   # bearer gone
            results[routing] = out
        assert results["shared"] == results["fanout"]
        assert len(results["shared"][1]) == 1       # the t=20 match

    def test_mid_stream_registrant_inherits_stream_duplicate_view(self):
        """The one deliberate semantic refinement of shared routing: an
        in-window id collision is judged against the *stream* (the shared
        buffer), so a query registered mid-stream drops a replayed id
        whose original bearer it never saw, instead of alerting on the
        replay the way fanout's per-matcher buffering does.  Pinned here
        so the divergence stays intentional and documented."""
        session = Session(window=10.0, duplicate_policy="skip")
        session.register("early", labeled_path_query(1, elabels=("x",)))
        session.push(StreamEdge("d0", "d1", src_label="A", dst_label="B",
                                timestamp=1.0, label="x", edge_id="X"))
        session.register("late", labeled_path_query(1, elabels=("x",)))
        replay = StreamEdge("d2", "d3", src_label="A", dst_label="B",
                            timestamp=2.0, label="x", edge_id="X")
        assert session.push(replay) == []           # dropped stream-wide
        assert session.result_counts() == {"early": 1, "late": 0}
        # Once the bearer expires, the id is fresh for everyone again.
        fresh = StreamEdge("d4", "d5", src_label="A", dst_label="B",
                           timestamp=20.0, label="x", edge_id="X")
        assert [name for name, _ in session.push(fresh)] == \
            ["early", "late"]

    def test_raise_policy_rejects_identically_and_atomically(self):
        sessions = twin_sessions(
            lambda routing: Session(window=100.0, routing=routing))
        errors = {}
        for routing, session in sessions.items():
            session.register("p1x", labeled_path_query(1, elabels=("x",)))
            session.register("wild", labeled_path_query(1, elabels=(ANY,)))
            session.push(StreamEdge("d0", "d1", src_label="A",
                                    dst_label="B", timestamp=1.0,
                                    label="x", edge_id="dup"))
            with pytest.raises(ValueError) as exc:
                session.push(StreamEdge("d3", "d4", src_label="A",
                                        dst_label="B", timestamp=2.0,
                                        label="x", edge_id="dup"))
            errors[routing] = str(exc.value)
            # All-or-nothing: the rejected arrival left no trace.
            assert session.current_time == 1.0
        assert errors["shared"] == errors["fanout"]
        assert "p1x" in errors["shared"] and "wild" in errors["shared"]


class TestChurn:
    def test_register_deregister_mid_stream(self):
        """Routing index and shared-window subscriptions stay consistent
        through live churn, and both modes keep agreeing."""
        results = {}
        sessions = twin_sessions(
            lambda routing: Session(window=6.0, routing=routing))
        edges = labeled_stream(37, 360)
        third = len(edges) // 3
        for routing, session in sessions.items():
            queries = query_set()
            session.register("p1x", queries["p1x"])
            session.register("p2y", queries["p2y"])
            session.register("wild", queries["wild"])
            tagged = Counter(session.push_many(edges[:third]))
            session.deregister("p2y")
            session.register("late", labeled_path_query(
                2, vstart=0, elabels=("x", "y")))
            tagged += Counter(session.push_many(edges[third:2 * third]))
            session.deregister("wild")
            # Re-use a retired name with a different query.
            session.register("p2y", labeled_path_query(
                1, vstart=1, elabels=("y",)))
            tagged += Counter(session.push_many(edges[2 * third:]))
            results[routing] = tagged
        assert results["shared"] == results["fanout"]
        assert_sessions_equivalent(sessions["shared"], sessions["fanout"])

    def test_deregister_leaves_no_index_or_subscription_residue(self):
        session = Session(window=6.0)
        session.register("a", labeled_path_query(2, elabels=("x", "y")))
        session.register("w", labeled_path_query(1, elabels=(ANY,)))
        edges = labeled_stream(41, 60)
        session.push_many(edges[:30])
        group_key = ("time", 6.0)
        group_window = session._groups[group_key].window
        session.deregister("a")
        session.deregister("w")
        assert session._routes == {}
        assert session._generic_entries == []
        assert session._members == {}
        assert session._route_keys == {}
        # Last member out unhooks the expiry router and frees the group.
        assert group_key not in session._groups
        assert group_window._subscribers == []
        assert session.shared_window_cells() == 0
        # A fresh registration after total churn keeps streaming.
        session.register("b", labeled_path_query(1, elabels=("x",)))
        session.push_many(edges[30:])
        assert session._groups[group_key].window is not group_window

    def test_mid_stream_registration_sees_only_future(self):
        results = {}
        sessions = twin_sessions(
            lambda routing: Session(window=50.0, routing=routing))
        edges = labeled_stream(43, 100)
        for routing, session in sessions.items():
            session.register("early", labeled_path_query(1, elabels=("x",)))
            session.push_many(edges[:50])
            session.register("late", labeled_path_query(1, elabels=("x",)))
            results[routing] = Counter(session.push_many(edges[50:]))
        assert results["shared"] == results["fanout"]
        shared = sessions["shared"]
        late_count = shared.result_counts()["late"]
        early_count = shared.result_counts()["early"]
        assert late_count <= early_count


class TestCheckpointRestore:
    def test_shared_session_round_trip_equals_continuous_run(self):
        edges = labeled_stream(47, 240)
        half = len(edges) // 2

        continuous = Session(window=6.0, routing="fanout")
        for name, query in query_set().items():
            continuous.register(name, query)
        reference = Counter(continuous.push_many(edges))

        session = Session(window=6.0)       # shared by default
        for name, query in query_set().items():
            session.register(name, query)
        first = Counter(session.push_many(edges[:half]))
        buffer = io.BytesIO()
        session.checkpoint(buffer)
        buffer.seek(0)
        restored = Session.restore(buffer)
        assert restored.session_stats()["routing"] == "shared"
        second = Counter(restored.push_many(edges[half:]))
        assert first + second == reference
        assert restored.result_counts() == continuous.result_counts()
        # Restored views still alias the restored shared buffers.
        member = restored._members["p1x"]
        assert member.matcher.window.shared is \
            restored._groups[member.group_key].window

    def test_checkpoint_mid_batch_state_is_flushed(self):
        """__getstate__ drains pending expiry deliveries, so a pickle
        taken at any point equals the eagerly-flushed state."""
        session = Session(window=2.0)
        session.register("p1x", labeled_path_query(1, elabels=("x",)))
        session.push_many(labeled_stream(53, 80))
        assert session._dirty == set()
        buffer = io.BytesIO()
        session.checkpoint(buffer)
        buffer.seek(0)
        restored = Session.restore(buffer)
        assert restored._dirty == set()
        assert restored.result_counts() == session.result_counts()
