"""Differential property suite: sharded sessions ≡ ``sharding="none"``.

A :class:`~repro.concurrency.sharding.ShardedSession` is a deployment
transformation — partitioning matchers across worker shards must change
*where* engines run, never *what* they produce.  This suite streams the
scenarios of the routing suite through twin sessions (unsharded vs
``"thread"`` and ``"process"`` shards) and asserts identical ordered
``(name, match)`` streams, result counts, per-engine stats and space,
across both storages, time- and count-based windows, duplicate policies,
mid-stream churn (including a shard whose *last* matcher deregisters),
sub-plan sharing, and checkpoint/restore.

Thread shards carry most scenarios (cheap to spawn); process shards are
exercised on the representative ones — the worker protocol is identical,
only the transport differs.
"""

import io
import os
from collections import Counter

import pytest

from repro import (
    CountSlidingWindow, EngineConfig, Session, ShardedSession, StreamEdge,
)
from repro.concurrency.sharding import shard_of

from .test_session_routing import (
    labeled_path_query, labeled_stream, query_set,
)

MODES = ["thread", "process"]

#: CI sets REPRO_TEST_TRANSPORT=shm|pipe to run the whole differential
#: suite's process-mode scenarios over one shard transport; unset, the
#: engine default applies.
TRANSPORT = os.environ.get("REPRO_TEST_TRANSPORT")


def make_session(mode, shards=2, **kwargs):
    if mode is None:
        return Session(**kwargs)
    if mode == "process" and TRANSPORT and "transport" not in kwargs:
        kwargs["transport"] = TRANSPORT
    return Session(sharding=mode, shards=shards, **kwargs)


def close(session):
    if isinstance(session, ShardedSession):
        session.close()


def run_stream(session, edges, queries=None, **register_options):
    if queries is not None:
        for name, query in queries.items():
            session.register(name, query, **register_options)
    tagged = session.push_many(edges)
    summary = {
        "tagged": tagged,
        "counts": session.result_counts(),
        "matches": {name: Counter(ms)
                    for name, ms in session.current_matches().items()},
        "stats": session.stats(),
        "space": session.space_cells(),
    }
    return summary


def assert_equivalent(base, sharded):
    assert base["tagged"] == sharded["tagged"]          # ordered, not just multiset
    assert base["counts"] == sharded["counts"]
    assert base["matches"] == sharded["matches"]
    assert base["space"] == sharded["space"]
    for name, stats in base["stats"].items():
        other = sharded["stats"][name]
        # Engine-level counters the sharded path must preserve exactly.
        for key in ("edges_matched", "matches_emitted", "edges_skipped",
                    "partial_matches_created"):
            assert stats[key] == other[key], (name, key)


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("storage", ["mstree", "independent"])
    def test_time_windows_randomized(self, mode, storage):
        edges = labeled_stream(7, 400)
        config = EngineConfig(storage=storage)
        base = run_stream(make_session(None, window=6.0, config=config),
                          edges, query_set())
        session = make_session(mode, window=6.0, config=config)
        sharded = run_stream(session, edges, query_set())
        close(session)
        assert sum(base["counts"].values()) > 0         # non-vacuous
        assert_equivalent(base, sharded)

    @pytest.mark.parametrize("mode", MODES)
    def test_count_windows_randomized(self, mode):
        edges = labeled_stream(11, 400)
        window = lambda: CountSlidingWindow(40)             # noqa: E731
        base = run_stream(make_session(None, window=window), edges,
                          query_set())
        session = make_session(mode, window=window)
        sharded = run_stream(session, edges, query_set())
        close(session)
        assert sum(base["counts"].values()) > 0
        assert_equivalent(base, sharded)

    def test_mixed_window_groups(self):
        """Time and count groups in one session: expiry fan-out and the
        per-group mirrors must not interfere."""
        edges = labeled_stream(13, 350)

        def build(mode):
            session = make_session(mode, shards=3)
            for i, (name, query) in enumerate(query_set().items()):
                window = 5.0 if i % 2 == 0 else CountSlidingWindow(30)
                session.register(name, query, window=window)
            return session

        base_session, sharded_session = build(None), build("thread")
        base = run_stream(base_session, edges)
        sharded = run_stream(sharded_session, edges)
        close(sharded_session)
        assert sum(base["counts"].values()) > 0
        assert_equivalent(base, sharded)

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("policy", ["skip", "count"])
    def test_duplicate_policies(self, mode, policy):
        """Replayed in-window ids: stream-level judgement must match the
        unsharded shared session's, including skip accounting."""
        edges = labeled_stream(17, 400, id_pool=25)
        base = run_stream(
            make_session(None, window=8.0, duplicate_policy=policy),
            edges, query_set())
        session = make_session(mode, window=8.0, duplicate_policy=policy)
        sharded = run_stream(session, edges, query_set())
        close(session)
        skipped = sum(s["edges_skipped"] for s in base["stats"].values())
        if policy == "count":
            assert skipped > 0                          # non-vacuous
        assert_equivalent(base, sharded)

    def test_raise_rejection_is_side_effect_free(self):
        session = make_session("thread", window=10.0)
        session.register("q", labeled_path_query(1, elabels=("x",)))
        session.push(StreamEdge("d0", "d1", src_label="A", dst_label="B",
                                timestamp=1.0, label="x", edge_id="dup"))
        with pytest.raises(ValueError, match="duplicate in-window"):
            session.push(StreamEdge(
                "d1", "d2", src_label="B", dst_label="C",
                timestamp=2.0, label="y", edge_id="dup"))
        # The rejected arrival advanced nothing: the clock still accepts
        # any later timestamp and the window holds one edge.
        assert session.current_time == 1.0
        session.push(StreamEdge("d0", "d1", src_label="A", dst_label="B",
                                timestamp=2.5, label="x", edge_id="ok"))
        assert session.result_counts() == {"q": 2}
        close(session)


class TestChurn:
    @pytest.mark.parametrize("mode", MODES)
    def test_register_deregister_midstream(self, mode):
        """Live churn: a query registered mid-stream starts empty, a
        deregistered one stops producing — identically in both layouts."""
        edges = labeled_stream(23, 450)
        thirds = [edges[:150], edges[150:300], edges[300:]]

        def drive(session):
            queries = query_set()
            for name in ("p1x", "p2y", "p2xy", "wild"):
                session.register(name, queries[name])
            tagged = list(session.push_many(thirds[0]))
            session.deregister("p2y")
            session.register("p3", queries["p3"])
            tagged += session.push_many(thirds[1])
            session.deregister("wild")
            tagged += session.push_many(thirds[2])
            summary = {
                "tagged": tagged,
                "counts": session.result_counts(),
                "matches": {n: Counter(ms) for n, ms
                            in session.current_matches().items()},
                "stats": session.stats(),
                "space": session.space_cells(),
            }
            return summary

        base = drive(make_session(None, window=6.0))
        session = make_session(mode, window=6.0, shards=3)
        sharded = drive(session)
        close(session)
        assert sum(base["counts"].values()) > 0
        assert_equivalent(base, sharded)

    def test_last_matcher_on_shard_deregisters(self):
        """A shard emptied mid-stream drains, releases its subscriptions,
        and stops receiving arrivals — results stay equivalent."""
        shards = 2
        # Craft names so one shard holds exactly one query.
        pool = [f"q{i}" for i in range(40)]
        majority = [n for n in pool if shard_of(n, shards) == 0][:3]
        minority = [n for n in pool if shard_of(n, shards) == 1][:1]
        assert len(majority) == 3 and len(minority) == 1
        edges = labeled_stream(29, 400)

        def drive(session):
            for name in majority:
                session.register(name, labeled_path_query(2, elabels=("x", "y")))
            session.register(minority[0], labeled_path_query(1, elabels=("z",)))
            tagged = list(session.push_many(edges[:200]))
            session.deregister(minority[0])
            tagged += session.push_many(edges[200:])
            return tagged, session.result_counts(), session.space_cells()

        base = drive(make_session(None, window=6.0))

        session = make_session("thread", shards=shards, window=6.0)
        for name in majority:
            session.register(name, labeled_path_query(2, elabels=("x", "y")))
        session.register(minority[0], labeled_path_query(1, elabels=("z",)))
        tagged = list(session.push_many(edges[:200]))
        session.deregister(minority[0])
        at_dereg = session.session_stats()["per_shard"][1]
        assert at_dereg["queries"] == 0
        assert at_dereg["edges_received"] > 0       # it was participating
        tagged += session.push_many(edges[200:])
        sharded = (tagged, session.result_counts(), session.space_cells())
        after = session.session_stats()["per_shard"][1]
        # The emptied shard stopped receiving arrivals the moment its
        # routing entries died with its last matcher.
        assert after["edges_received"] == at_dereg["edges_received"]
        close(session)
        assert base == sharded

    def test_mid_stream_registrant_with_duplicates(self):
        """Sharded and unsharded sessions share the *stream-level*
        duplicate view, so churn plus id re-use stays equivalent (the
        refinement that distinguishes shared routing from fanout)."""
        edges = labeled_stream(31, 300, id_pool=40)

        def drive(session):
            queries = query_set()
            session.register("p1x", queries["p1x"],
                             duplicate_policy="count")
            tagged = list(session.push_many(edges[:150]))
            session.register("p2xy", queries["p2xy"],
                             duplicate_policy="count")
            tagged += session.push_many(edges[150:])
            return tagged, session.result_counts(), session.stats()

        base = drive(make_session(None, window=8.0))
        session = make_session("thread", window=8.0)
        sharded = drive(session)
        close(session)
        assert base == sharded


class TestBackendsAndSharing:
    @pytest.mark.parametrize("backend", ["sjtree", "incmat", "naive"])
    def test_baseline_backends(self, backend):
        edges = labeled_stream(37, 200)
        queries = {"a": labeled_path_query(1, elabels=("x",)),
                   "b": labeled_path_query(2, elabels=("x", "y"))}
        base = run_stream(make_session(None, window=5.0), edges,
                          dict(queries), backend=backend)
        session = make_session("thread", window=5.0)
        sharded = run_stream(session, edges, dict(queries), backend=backend)
        close(session)
        assert base["tagged"] == sharded["tagged"]
        assert base["counts"] == sharded["counts"]

    @pytest.mark.parametrize("sharing", ["shared", "private"])
    def test_subplan_sharing_within_shards(self, sharing):
        """Sub-plan sharing keeps working inside each shard (stores never
        cross a shard boundary) and stays answer-invariant."""
        edges = labeled_stream(41, 350)
        config = EngineConfig(subplan_sharing=sharing)
        # Same-shaped queries so same-shard ones share their TC-subquery.
        queries = {f"q{i}": labeled_path_query(2, elabels=("x", "y"))
                   for i in range(6)}
        base = run_stream(make_session(None, window=6.0, config=config),
                          edges, dict(queries))
        session = make_session("thread", window=6.0, config=config)
        sharded = run_stream(session, edges, dict(queries))
        stats = session.session_stats()
        close(session)
        assert base["tagged"] == sharded["tagged"]
        assert base["counts"] == sharded["counts"]
        assert base["matches"] == sharded["matches"]
        if sharing == "private":
            # Private stores are per-engine either way: identical space.
            assert base["space"] == sharded["space"]
        else:
            # Sharing is per *shard*: one store copy per shard hosting a
            # consumer, instead of one session-wide — more than the
            # unsharded shared footprint, never more than private.
            assert stats["shared_subplans"] >= 1
            assert stats["subplan_consumers"] == 6
            assert base["space"] <= sharded["space"]


class TestFacadeSurface:
    def test_dispatch_via_config_and_shorthand(self):
        session = Session(config=EngineConfig(sharding="thread", shards=2))
        assert isinstance(session, ShardedSession)
        close(session)
        session = Session(sharding="thread")
        assert isinstance(session, ShardedSession)
        close(session)
        assert not isinstance(Session(), ShardedSession)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="sharding"):
            EngineConfig(sharding="cluster").validate()
        with pytest.raises(ValueError, match="shards"):
            EngineConfig(sharding="thread", shards=0).validate()
        with pytest.raises(ValueError, match="routing"):
            EngineConfig(sharding="thread", routing="fanout").validate()

    def test_registration_restrictions(self):
        session = make_session("thread")
        with pytest.raises(ValueError, match="factory backends"):
            session.register("f", labeled_path_query(1),
                             window=5.0, backend=lambda q, w: None)
        prefilled = CountSlidingWindow(10)
        prefilled.push(StreamEdge("a", "b", src_label="A", dst_label="B",
                                  timestamp=1.0))
        with pytest.raises(ValueError, match="shareable window"):
            session.register("p", labeled_path_query(1), window=prefilled)
        window = CountSlidingWindow(10)
        session.register("ok", labeled_path_query(1), window=window)
        with pytest.raises(ValueError, match="already used"):
            session.register("reuse", labeled_path_query(1), window=window)
        with pytest.raises(ValueError, match="already registered"):
            session.register("ok", labeled_path_query(1), window=5.0)
        close(session)

    def test_assignments_are_stable_hashes(self):
        session = make_session("thread", shards=3)
        names = [f"q{i}" for i in range(7)]
        for name in names:
            session.register(name, labeled_path_query(1), window=5.0)
        assert session.names() == names
        assert len(session) == 7 and "q3" in session
        assert session.shard_assignments() == {
            name: shard_of(name, 3) for name in names}
        close(session)

    def test_matcher_access(self):
        for mode in MODES:
            session = make_session(mode, window=6.0)
            session.register("q", labeled_path_query(1, elabels=("x",)))
            session.push_many(labeled_stream(3, 60))
            matcher = session.matcher("q")
            assert matcher.result_count() == \
                session.result_counts()["q"]
            with pytest.raises(KeyError):
                session.matcher("nope")
            close(session)

    def test_register_return_value(self):
        session = make_session("thread")
        matcher = session.register("q", labeled_path_query(1), window=5.0)
        assert matcher is not None and matcher.query is not None
        close(session)
        session = make_session("process")
        assert session.register("q", labeled_path_query(1),
                                window=5.0) is None
        close(session)

    def test_close_is_idempotent_and_blocks_use(self):
        session = make_session("thread")
        session.register("q", labeled_path_query(1), window=5.0)
        session.close()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.push_many(labeled_stream(5, 10))
        with pytest.raises(RuntimeError, match="closed"):
            session.register("r", labeled_path_query(1), window=5.0)

    def test_context_manager(self):
        with make_session("thread") as session:
            session.register("q", labeled_path_query(1), window=5.0)
            session.push_many(labeled_stream(5, 50))
        with pytest.raises(RuntimeError, match="closed"):
            session.result_counts()

    def test_sinks_and_callbacks(self):
        heard = []
        session = make_session("thread", window=6.0)
        session.register("q", labeled_path_query(1, elabels=("x",)),
                         callback=lambda n, m: heard.append(("cb", n)))
        session.add_sink(lambda n, m: heard.append(("sink", n)))
        delivered = session.ingest(labeled_stream(5, 80))
        assert delivered > 0
        assert heard.count(("cb", "q")) == delivered
        assert heard.count(("sink", "q")) == delivered
        close(session)

    def test_empty_shards_are_harmless(self):
        edges = labeled_stream(9, 120)
        base = run_stream(make_session(None, window=5.0), edges,
                          {"only": labeled_path_query(1, elabels=("x",))})
        session = make_session("thread", shards=4, window=5.0)
        sharded = run_stream(
            session, edges,
            {"only": labeled_path_query(1, elabels=("x",))})
        close(session)
        assert len(base["tagged"]) > 0
        assert_equivalent(base, sharded)


class TestTransports:
    """The shm ring and the pipe fallback must be answer-identical —
    the transport moves bytes, never meaning."""

    @pytest.mark.parametrize("transport", ["shm", "pipe"])
    def test_transport_differential(self, transport):
        edges = labeled_stream(47, 400)
        base = run_stream(make_session(None, window=6.0), edges,
                          query_set())
        session = make_session("process", window=6.0,
                               transport=transport)
        sharded = run_stream(session, edges, query_set())
        stats = session.session_stats()
        close(session)
        assert stats["transport"] == transport
        assert all(p["transport"] == transport
                   for p in stats["per_shard"])
        assert sum(base["counts"].values()) > 0
        assert_equivalent(base, sharded)

    def test_transport_validation_and_shorthand(self):
        with pytest.raises(ValueError, match="transport"):
            EngineConfig(transport="carrier-pigeon").validate()
        session = Session(sharding="process", transport="pipe")
        try:
            assert session.config.transport == "pipe"
            assert session.session_stats()["transport"] == "pipe"
        finally:
            close(session)

    def test_thread_mode_reports_inline_transport(self):
        session = make_session("thread")
        try:
            assert session.session_stats()["transport"] == "inline"
        finally:
            close(session)

    def test_oversized_batch_rides_the_pipe_same_answer(self):
        # Unique multi-KiB vertex ids make one 1024-edge batch outgrow
        # the 1 MiB data ring: the facade must fall back to pickling
        # that batch without reordering it against ring traffic.
        big = "vertex-" * 480                       # ~3.4 KiB per id
        edges = [StreamEdge(big + f"s{i}", big + f"t{i}", src_label="A",
                            dst_label="B", timestamp=float(i), label="x")
                 for i in range(300)]
        queries = {"fat": labeled_path_query(1, elabels=("x",))}
        base = run_stream(make_session(None, window=50.0), edges,
                          dict(queries))
        session = make_session("process", window=50.0, transport="shm")
        sharded = run_stream(session, edges, dict(queries))
        close(session)
        assert len(base["tagged"]) > 0
        assert_equivalent(base, sharded)


class TestCheckpoint:
    @pytest.mark.parametrize("mode", MODES)
    def test_roundtrip_matches_uninterrupted_run(self, mode):
        edges = labeled_stream(43, 300)
        base = run_stream(make_session(None, window=6.0), edges,
                          query_set())

        session = make_session(mode, window=6.0, shards=2)
        for name, query in query_set().items():
            session.register(name, query)
        tagged = list(session.push_many(edges[:150]))
        buffer = io.BytesIO()
        session.checkpoint(buffer)
        close(session)
        buffer.seek(0)
        restored = Session.restore(buffer)
        assert isinstance(restored, ShardedSession)
        assert restored.shard_assignments() == {
            name: shard_of(name, 2) for name in query_set()}
        tagged += restored.push_many(edges[150:])
        assert tagged == base["tagged"]
        assert restored.result_counts() == base["counts"]
        assert restored.space_cells() == base["space"]
        close(restored)

    @pytest.mark.parametrize("transport", ["shm", "pipe"])
    def test_restore_preserves_transport(self, transport):
        """Rings die with their processes; restore re-creates them (or
        stays on the pipe) per the checkpointed config."""
        edges = labeled_stream(53, 200)
        base = run_stream(make_session(None, window=6.0), edges,
                          query_set())
        session = make_session("process", window=6.0,
                               transport=transport)
        for name, query in query_set().items():
            session.register(name, query)
        tagged = list(session.push_many(edges[:100]))
        buffer = io.BytesIO()
        session.checkpoint(buffer)
        close(session)
        buffer.seek(0)
        restored = Session.restore(buffer)
        assert restored.session_stats()["transport"] == transport
        tagged += restored.push_many(edges[100:])
        close(restored)
        assert tagged == base["tagged"]

    def test_checkpoint_drops_sinks_and_callbacks(self):
        session = make_session("thread", window=6.0)
        session.register("q", labeled_path_query(1, elabels=("x",)),
                         callback=lambda n, m: None)
        session.add_sink(lambda n, m: None)
        buffer = io.BytesIO()
        session.checkpoint(buffer)
        close(session)
        buffer.seek(0)
        restored = Session.restore(buffer)
        assert restored._sinks == []
        assert restored._callbacks == {"q": None}
        restored.set_callback("q", lambda n, m: None)
        close(restored)
