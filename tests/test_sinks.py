"""Sink lifecycle semantics: flush/close, rotation, cross-thread appends."""

import io
import json
import os
import threading

import pytest

from repro import JSONLSink, ListSink, Session
from repro.sinks import RotatingJSONLSink, match_record

from .test_session import TWO_HOP_DSL, two_hop_stream


def run_through(sink):
    session = Session()
    session.register("chain", TWO_HOP_DSL)
    session.add_sink(sink)
    session.push_many(two_hop_stream())
    return session


class TestJSONLSinkLifecycle:
    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "matches.jsonl")
        with JSONLSink(path) as sink:
            run_through(sink)
            assert sink.count == 3
        assert sink.closed
        with open(path, encoding="utf-8") as handle:
            assert len(handle.readlines()) == 3

    def test_write_after_close_raises(self, tmp_path):
        sink = JSONLSink(str(tmp_path / "m.jsonl"))
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            run_through(sink)

    def test_close_is_idempotent(self, tmp_path):
        sink = JSONLSink(str(tmp_path / "m.jsonl"))
        sink.close()
        sink.close()

    def test_flush_after_close_raises(self, tmp_path):
        sink = JSONLSink(str(tmp_path / "m.jsonl"))
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.flush()

    def test_caller_owned_handle_left_open(self):
        buffer = io.StringIO()
        sink = JSONLSink(buffer)
        run_through(sink)
        sink.close()
        assert not buffer.closed            # caller owns its lifetime
        assert len(buffer.getvalue().splitlines()) == 3
        with pytest.raises(ValueError, match="closed"):
            sink("chain", None)


class TestRotatingJSONLSink:
    def test_segments_rotate_and_seal(self, tmp_path):
        directory = str(tmp_path / "segments")
        sink = RotatingJSONLSink(directory)
        session = Session()
        session.register("chain", TWO_HOP_DSL)
        session.add_sink(sink)
        edges = two_hop_stream()
        session.push_many(edges[:2])
        sealed = sink.rotate()
        assert sealed == 0 and sink.index == 1
        session.push_many(edges[2:])
        sink.close()

        files = sink.segment_files()
        assert [os.path.basename(f) for f in files] == [
            "matches-000000.jsonl", "matches-000001.jsonl"]
        with open(files[0], encoding="utf-8") as handle:
            first = [json.loads(line) for line in handle]
        with open(files[1], encoding="utf-8") as handle:
            second = [json.loads(line) for line in handle]
        assert len(first) == 1 and len(second) == 2
        assert first[0]["matched_at"] == 2.0
        assert {r["matched_at"] for r in second} == {4.0}

    def test_start_index_continues_numbering(self, tmp_path):
        directory = str(tmp_path / "segments")
        sink = RotatingJSONLSink(directory, start_index=7)
        assert os.path.basename(sink.segment_path(sink.index)) \
            == "matches-000007.jsonl"
        sink.close()
        assert os.path.exists(os.path.join(directory,
                                           "matches-000007.jsonl"))

    def test_write_after_close_raises(self, tmp_path):
        sink = RotatingJSONLSink(str(tmp_path / "segments"))
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.rotate()

    def test_counts_across_rotations(self, tmp_path):
        sink = RotatingJSONLSink(str(tmp_path / "segments"))
        run_through(sink)
        sink.rotate()
        run_through(sink)
        assert sink.count == 6
        sink.close()


class TestListSinkThreading:
    def test_concurrent_appends_never_lost(self):
        sink = ListSink()
        session = Session()
        session.register("chain", TWO_HOP_DSL)

        def append_directly(tag):
            for i in range(200):
                sink(f"direct-{tag}", _FakeMatch(i))

        threads = [threading.Thread(target=append_directly, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert len(sink) == 800
        assert len(sink.for_query("direct-0")) == 200
        assert len(list(sink)) == 800

    def test_iteration_snapshot_survives_concurrent_clear(self):
        sink = ListSink()
        for i in range(100):
            sink("q", _FakeMatch(i))
        iterator = iter(sink)
        sink.clear()
        assert len(list(iterator)) == 100   # snapshot, not live view
        assert len(sink) == 0


class _FakeMatch:
    """Just enough of a Match for ListSink bookkeeping."""

    def __init__(self, i):
        self.i = i

    def latest_timestamp(self):
        return float(self.i)


class TestMatchRecord:
    def test_canonical_shape(self):
        sink = ListSink()
        run_through(sink)
        name, match = sink.records[0]
        record = match_record(name, match)
        assert set(record) == {"query", "matched_at", "edges"}
        assert record["query"] == "chain"
        for edge in record["edges"].values():
            assert set(edge) == {"src", "dst", "timestamp", "label"}
        json.dumps(record)      # JSON-able throughout
