"""Differential property suite: ``subplan_sharing="shared"`` ≡ ``"private"``.

The session-level sub-plan cache is a performance transformation: engines
whose plans contain the same canonical TC-subquery adopt one refcounted
store, written once per arrival.  Shared and private modes must therefore
produce identical ``(name, match)`` multisets, identical result counts and
identical per-query *logical* space — across storages, window policies,
duplicate policies, mid-stream churn and checkpoint/restore — while the
session-level *physical* space deduplicates.
"""

import io
import random
from collections import Counter

import pytest

from repro import (
    CountSlidingWindow, EngineConfig, QueryGraph, Session, StreamEdge,
)

VLABELS = "ABC"
ELABELS = ("x", "y", "z")


def labeled_stream(seed, n, *, n_vertices=12, dt=0.4, id_pool=None):
    rng = random.Random(seed)
    t = 0.0
    edges = []
    for i in range(n):
        t += rng.random() * dt + 0.01
        u = rng.randrange(n_vertices)
        v = rng.randrange(n_vertices)
        while v == u:
            v = rng.randrange(n_vertices)
        edge_id = f"id{i % id_pool}" if id_pool else None
        edges.append(StreamEdge(
            f"d{u}", f"d{v}", src_label=VLABELS[u % 3],
            dst_label=VLABELS[v % 3], timestamp=round(t, 3),
            label=rng.choice(ELABELS), edge_id=edge_id))
    return edges


def labeled_path_query(n_edges, *, vstart=0, elabels=("x",)):
    q = QueryGraph()
    for i in range(n_edges + 1):
        q.add_vertex(f"v{i}", VLABELS[(vstart + i) % 3])
    for i in range(n_edges):
        q.add_edge(f"e{i}", f"v{i}", f"v{i + 1}",
                   label=elabels[i % len(elabels)])
    q.add_timing_chain(*[f"e{i}" for i in range(n_edges)])
    return q


def chain_plus_tail():
    """The x→y chain of the ``t*`` tenants plus a timing-unordered z tail:
    decomposes into [x→y chain][z singleton], so its first sub-plan
    canonicalises identically to the plain 2-edge queries'."""
    q = labeled_path_query(2, vstart=0, elabels=("x", "y"))
    q.add_vertex("v3", VLABELS[0])
    q.add_edge("tail", "v2", "v3", label="z")
    return q


def overlapping_query_set():
    """Three copies of one shape, a superset sharing that shape as its
    first sub-plan, and one unrelated query — fresh ``QueryGraph``
    objects on every call."""
    queries = {
        "t0": labeled_path_query(2, vstart=0, elabels=("x", "y")),
        "t1": labeled_path_query(2, vstart=0, elabels=("x", "y")),
        "t2": labeled_path_query(2, vstart=0, elabels=("x", "y")),
        "super": chain_plus_tail(),
        "other": labeled_path_query(2, vstart=1, elabels=("y", "z")),
    }
    return queries


def twin_sessions(make_session):
    return {mode: make_session(mode) for mode in ("shared", "private")}


def assert_sessions_equivalent(shared, private):
    assert shared.result_counts() == private.result_counts()
    for name in private.names():
        sm, pm = shared.matcher(name), private.matcher(name)
        assert Counter(sm.current_matches()) == \
            Counter(pm.current_matches()), name
        # Per-query logical space is sharing-invariant.
        assert sm.space_cells() == pm.space_cells(), name
    # Session-level physical space deduplicates, never inflates.
    assert shared.space_cells() <= private.space_cells()


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("storage", ["mstree", "independent"])
    def test_time_windows_randomized(self, storage):
        results = {}
        sessions = twin_sessions(lambda mode: Session(
            window=6.0,
            config=EngineConfig(storage=storage, subplan_sharing=mode)))
        edges = labeled_stream(7, 400)
        for mode, session in sessions.items():
            for name, query in overlapping_query_set().items():
                session.register(name, query)
            results[mode] = Counter(session.push_many(edges))
        assert results["shared"] == results["private"]
        assert sum(results["shared"].values()) > 0      # non-vacuous
        assert sessions["shared"].session_stats()["subplan_reuses"] > 0
        assert_sessions_equivalent(sessions["shared"], sessions["private"])

    def test_count_windows_randomized(self):
        results = {}
        sessions = twin_sessions(lambda mode: Session(
            window=lambda: CountSlidingWindow(40),
            config=EngineConfig(subplan_sharing=mode)))
        edges = labeled_stream(11, 300)
        for mode, session in sessions.items():
            for name, query in overlapping_query_set().items():
                session.register(name, query)
            results[mode] = Counter(session.push_many(edges))
        assert results["shared"] == results["private"]
        assert_sessions_equivalent(sessions["shared"], sessions["private"])

    def test_mixed_window_policies_do_not_cross_share(self):
        """Same canonical sub-plan, different window groups: each group
        keeps its own record (expiry cadence differs), and matches still
        agree with the private twin."""
        results = {}
        sessions = twin_sessions(lambda mode: Session(
            window=5.0, config=EngineConfig(subplan_sharing=mode)))
        edges = labeled_stream(13, 300)
        for mode, session in sessions.items():
            session.register("short", labeled_path_query(
                2, vstart=0, elabels=("x", "y")))
            session.register("short2", labeled_path_query(
                2, vstart=0, elabels=("x", "y")))
            session.register("long", labeled_path_query(
                2, vstart=0, elabels=("x", "y")), window=9.0)
            session.register("counted", labeled_path_query(
                2, vstart=0, elabels=("x", "y")),
                window=CountSlidingWindow(30))
            results[mode] = Counter(session.push_many(edges))
        assert results["shared"] == results["private"]
        shared = sessions["shared"]
        stats = shared.session_stats()
        # short+short2 share one record; long and counted each keep their
        # own (three records, four consumers).
        assert stats["shared_subplans"] == 3
        assert stats["subplan_consumers"] == 4
        short = shared.matcher("short")
        assert short._tc_stores[0] is shared.matcher("short2")._tc_stores[0]
        assert short._tc_stores[0] is not shared.matcher("long")._tc_stores[0]
        assert_sessions_equivalent(shared, sessions["private"])

    def test_mixed_storages_do_not_cross_share(self):
        results = {}
        sessions = twin_sessions(lambda mode: Session(
            window=6.0, config=EngineConfig(subplan_sharing=mode)))
        edges = labeled_stream(17, 250)
        for mode, session in sessions.items():
            session.register("tree", labeled_path_query(
                2, vstart=0, elabels=("x", "y")))
            session.register("flat", labeled_path_query(
                2, vstart=0, elabels=("x", "y")),
                config=EngineConfig(storage="independent",
                                    subplan_sharing=mode))
            results[mode] = Counter(session.push_many(edges))
        assert results["shared"] == results["private"]
        shared = sessions["shared"]
        assert shared.matcher("tree")._tc_stores[0] is not \
            shared.matcher("flat")._tc_stores[0]
        assert shared.session_stats()["shared_subplans"] == 2
        assert_sessions_equivalent(shared, sessions["private"])

    def test_mixed_indexing_consumers_share_one_store(self):
        """A scan-mode engine and a hash-mode engine canonicalise to the
        same sub-plan and share the store; whichever consumes an arrival
        first computes the delta, the other replays the memo."""
        results = {}
        sessions = twin_sessions(lambda mode: Session(
            window=6.0, config=EngineConfig(subplan_sharing=mode)))
        edges = labeled_stream(19, 250)
        for mode, session in sessions.items():
            session.register("hash", labeled_path_query(
                2, vstart=0, elabels=("x", "y")))
            session.register("scan", labeled_path_query(
                2, vstart=0, elabels=("x", "y")),
                config=EngineConfig(indexing="scan", subplan_sharing=mode))
            results[mode] = Counter(session.push_many(edges))
        assert results["shared"] == results["private"]
        shared = sessions["shared"]
        assert shared.matcher("hash")._tc_stores[0] is \
            shared.matcher("scan")._tc_stores[0]
        assert_sessions_equivalent(shared, sessions["private"])

    @pytest.mark.parametrize("policy", ["skip", "count"])
    def test_duplicate_drop_policies_agree(self, policy):
        results = {}
        sessions = twin_sessions(lambda mode: Session(
            window=3.0, duplicate_policy=policy,
            config=EngineConfig(subplan_sharing=mode)))
        edges = labeled_stream(31, 250, id_pool=10)
        for mode, session in sessions.items():
            for name, query in overlapping_query_set().items():
                session.register(name, query)
            results[mode] = Counter(session.push_many(edges))
        assert results["shared"] == results["private"]
        if policy == "count":
            shared_stats = sessions["shared"].stats()
            for name, private_stats in sessions["private"].stats().items():
                assert shared_stats[name]["edges_skipped"] == \
                    private_stats["edges_skipped"], name
        assert_sessions_equivalent(sessions["shared"], sessions["private"])

    def test_fanout_routing_never_shares(self):
        session = Session(window=6.0, routing="fanout")
        session.register("a", labeled_path_query(2, elabels=("x", "y")))
        session.register("b", labeled_path_query(2, elabels=("x", "y")))
        session.push_many(labeled_stream(23, 100))
        assert session.session_stats()["shared_subplans"] == 0
        assert session._matchers["a"]._tc_stores[0] is not \
            session._matchers["b"]._tc_stores[0]


class TestExactlyOnceMaintenance:
    def test_shared_store_cells_equal_single_engine(self):
        """Q identical queries keep ONE copy of the sub-plan store: the
        session's physical space equals a single private engine's."""
        shared = Session(window=50.0)
        private = Session(window=50.0, config=EngineConfig(
            subplan_sharing="private"))
        edges = labeled_stream(29, 200)
        num_queries = 6
        for session in (shared, private):
            for i in range(num_queries):
                session.register(f"q{i}", labeled_path_query(
                    2, elabels=("x", "y")))
            session.push_many(edges)
        stats = shared.session_stats()
        assert stats["shared_subplans"] == 1
        assert stats["subplan_consumers"] == num_queries
        one_engine = private.matcher("q0").space_cells()
        assert one_engine > 0
        assert shared.space_cells() == one_engine
        assert private.space_cells() == num_queries * one_engine
        # Logical per-query space is unchanged by sharing.
        assert shared.matcher("q0").space_cells() == one_engine

    def test_first_consumer_computes_rest_reuse(self):
        session = Session(window=50.0)
        session.register("first", labeled_path_query(2, elabels=("x", "y")))
        session.register("second", labeled_path_query(2, elabels=("x", "y")))
        session.push_many(labeled_stream(37, 150))
        first = session.matcher("first").stats
        second = session.matcher("second").stats
        assert first.subplan_reuses == 0        # registration order wins
        assert second.subplan_reuses > 0
        assert second.partial_matches_created == 0
        assert first.partial_matches_created > 0
        # Both report the same answers regardless of who did the work.
        assert session.result_counts()["first"] == \
            session.result_counts()["second"]


class TestChurn:
    def test_register_deregister_mid_stream(self):
        results = {}
        sessions = twin_sessions(lambda mode: Session(
            window=6.0, config=EngineConfig(subplan_sharing=mode)))
        edges = labeled_stream(41, 360)
        third = len(edges) // 3
        for mode, session in sessions.items():
            queries = overlapping_query_set()
            session.register("t0", queries["t0"])
            session.register("t1", queries["t1"])
            session.register("other", queries["other"])
            tagged = Counter(session.push_many(edges[:third]))
            session.deregister("t1")
            session.register("late", labeled_path_query(
                2, vstart=0, elabels=("x", "y")))
            tagged += Counter(session.push_many(edges[third:2 * third]))
            session.deregister("other")
            session.register("t1", labeled_path_query(
                1, vstart=1, elabels=("y",)))      # retired name, new query
            tagged += Counter(session.push_many(edges[2 * third:]))
            results[mode] = tagged
        assert results["shared"] == results["private"]
        assert_sessions_equivalent(sessions["shared"], sessions["private"])

    def test_deregister_releases_refcounts_and_frees_stores(self):
        session = Session(window=6.0)
        session.register("a", labeled_path_query(2, elabels=("x", "y")))
        session.register("b", labeled_path_query(2, elabels=("x", "y")))
        edges = labeled_stream(43, 120)
        session.push_many(edges[:60])
        registry = session._subplans
        assert registry.record_count() == 1
        assert registry.consumer_count() == 2
        shared_store = session._matchers["a"]._tc_stores[0]
        session.deregister("a")
        assert registry.record_count() == 1     # b still consumes it
        assert registry.consumer_count() == 1
        # The departed engine's expiry cascade is detached: only b's
        # global tree (if any) and the store's own bookkeeping remain.
        session.push_many(edges[60:])           # keeps streaming cleanly
        session.deregister("b")
        assert registry.record_count() == 0     # last consumer frees it
        assert registry.consumer_count() == 0
        assert shared_store._leaf_observers == []

    def test_deregister_releases_query_specific_indexes(self):
        """An engine's union-join shapes are query-specific; when it
        departs, the indexes it registered on a still-live shared store
        must be unregistered (refcounted), or every later insert/expiry
        would keep maintaining them for the store's whole lifetime."""
        session = Session(window=6.0)
        session.register("t0", labeled_path_query(2, elabels=("x", "y")))
        store = session._matchers["t0"]._tc_stores[0]
        baseline = store.indexes.index_count()
        session.register("sup", chain_plus_tail())
        assert session._matchers["sup"]._tc_stores[0] is store \
            or store in session._matchers["sup"]._tc_stores
        grew = store.indexes.index_count()
        assert grew > baseline          # sup's union shape landed here
        edges = labeled_stream(61, 120)
        session.push_many(edges[:60])
        session.deregister("sup")
        assert store.indexes.index_count() == baseline
        # t0 still probes its (refcounted) extension indexes just fine.
        session.push_many(edges[60:])
        assert session.result_counts()["t0"] >= 0
        session.deregister("t0")
        assert store.indexes.index_count() == 0     # fully balanced

    def test_mid_stream_registrant_gets_fresh_store(self):
        """A query registered mid-stream starts from an empty window, so
        it must not adopt a non-empty shared store — it opens a fresh
        record that *later* registrants may share."""
        results = {}
        sessions = twin_sessions(lambda mode: Session(
            window=50.0, config=EngineConfig(subplan_sharing=mode)))
        edges = labeled_stream(47, 200)
        for mode, session in sessions.items():
            session.register("early", labeled_path_query(
                2, elabels=("x", "y")))
            tagged = Counter(session.push_many(edges[:100]))
            session.register("late", labeled_path_query(
                2, elabels=("x", "y")))
            session.register("later", labeled_path_query(
                2, elabels=("x", "y")))
            tagged += Counter(session.push_many(edges[100:]))
            results[mode] = tagged
        assert results["shared"] == results["private"]
        shared = sessions["shared"]
        early = shared.matcher("early")._tc_stores[0]
        late = shared.matcher("late")._tc_stores[0]
        assert early is not late                # filled store not adopted
        assert late is shared.matcher("later")._tc_stores[0]
        assert_sessions_equivalent(shared, sessions["private"])


class TestCheckpointRestore:
    @pytest.mark.parametrize("storage", ["mstree", "independent"])
    def test_cache_hit_session_round_trip(self, storage):
        """Checkpointing a sharing session keeps shared stores single-copy
        (pickle memoisation) and restore preserves the sharing identity;
        the resumed run equals a continuous private run."""
        edges = labeled_stream(53, 240)
        half = len(edges) // 2

        continuous = Session(window=6.0, config=EngineConfig(
            storage=storage, subplan_sharing="private"))
        for name, query in overlapping_query_set().items():
            continuous.register(name, query)
        reference = Counter(continuous.push_many(edges))

        session = Session(window=6.0, config=EngineConfig(storage=storage))
        for name, query in overlapping_query_set().items():
            session.register(name, query)
        first = Counter(session.push_many(edges[:half]))
        buffer = io.BytesIO()
        session.checkpoint(buffer)
        buffer.seek(0)
        restored = Session.restore(buffer)
        stats = restored.session_stats()
        assert stats["subplan_sharing"] == "shared"
        assert stats["shared_subplans"] == \
            session.session_stats()["shared_subplans"]
        # Sharing identity survives the round trip: consumers of one
        # record still alias one store object.
        assert restored.matcher("t0")._tc_stores[0] is \
            restored.matcher("t1")._tc_stores[0]
        assert any(restored.matcher("t0")._tc_stores[0] is record.store
                   for record in restored._subplans.records())
        second = Counter(restored.push_many(edges[half:]))
        assert first + second == reference
        assert restored.result_counts() == continuous.result_counts()

    def test_checkpoint_drops_delta_memo(self):
        session = Session(window=6.0)
        session.register("a", labeled_path_query(2, elabels=("x", "y")))
        session.register("b", labeled_path_query(2, elabels=("x", "y")))
        session.push_many(labeled_stream(59, 80))
        (record,) = session._subplans.records()
        assert record._delta_key is not None    # memo warm after a push
        buffer = io.BytesIO()
        session.checkpoint(buffer)
        buffer.seek(0)
        restored = Session.restore(buffer)
        (restored_record,) = restored._subplans.records()
        assert restored_record._delta_key is None
        assert restored_record._deltas == {}
        assert restored_record.consumers == 2
