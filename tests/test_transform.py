"""Edge-label reification (the §II "imaginary vertex" reduction)."""


from repro import QueryGraph, StreamEdge, TimingMatcher
from repro.graph.stream import GraphStream
from repro.transform import (
    EDGE_TAG, reify_query, reify_stream, unreify_edge_map,
)


def labelled_query():
    """C → M (credit), B → M (payment), with credit ≺ payment."""
    q = QueryGraph()
    q.add_vertex("C", "account")
    q.add_vertex("M", "account")
    q.add_vertex("B", "bank")
    q.add_edge("credit", "C", "M", label="credit_pay")
    q.add_edge("payment", "B", "M", label="real_payment")
    q.add_timing_constraint("credit", "payment")
    return q


def labelled_stream(rows):
    stream = GraphStream()
    for src, dst, ts, label, src_label, dst_label in rows:
        stream.append(StreamEdge(src, dst, src_label=src_label,
                                 dst_label=dst_label, timestamp=ts,
                                 label=label))
    return stream


GOOD_ROWS = [
    ("c1", "m1", 1.0, "credit_pay", "account", "account"),
    ("b1", "m1", 2.0, "real_payment", "bank", "account"),
]

BAD_ORDER_ROWS = [
    ("b1", "m1", 1.0, "real_payment", "bank", "account"),
    ("c1", "m1", 2.0, "credit_pay", "account", "account"),
]


class TestReifyQuery:
    def test_structure_doubles_edges(self):
        reified, halves = reify_query(labelled_query())
        assert reified.num_edges == 4
        assert reified.num_vertices == 3 + 2
        assert set(halves) == {"credit", "payment"}
        reified.validate()

    def test_mid_vertex_labels_carry_edge_labels(self):
        reified, halves = reify_query(labelled_query())
        mid = ("mid", "credit")
        assert reified.vertex_label(mid) == (EDGE_TAG, "credit_pay")

    def test_timing_carried_over(self):
        reified, halves = reify_query(labelled_query())
        credit_in, credit_out = halves["credit"]
        pay_in, pay_out = halves["payment"]
        assert reified.timing.precedes(credit_in, credit_out)
        assert reified.timing.precedes(credit_out, pay_in)
        assert reified.timing.precedes(credit_in, pay_out)   # transitive


class TestReifyStream:
    def test_halves_interleave_correctly(self):
        reified = reify_stream(labelled_stream(GOOD_ROWS))
        stamps = [e.timestamp for e in reified]
        assert len(reified) == 4
        assert stamps == sorted(stamps)
        # σ1_out strictly before σ2_in.
        assert stamps[1] < 2.0

    def test_mid_vertices_unique_per_edge(self):
        reified = reify_stream(labelled_stream(GOOD_ROWS))
        mids = {e.dst for e in reified if isinstance(e.dst, tuple)}
        assert len(mids) == 2


class TestEquivalence:
    def _run(self, query, stream, window):
        matcher = TimingMatcher(query, window)
        out = []
        for edge in stream:
            out.extend(matcher.push(edge))
        return out

    def test_match_found_in_both_encodings(self):
        original = self._run(labelled_query(), labelled_stream(GOOD_ROWS), 100.0)
        reified_q, halves = reify_query(labelled_query())
        reified = self._run(reified_q, reify_stream(labelled_stream(GOOD_ROWS)),
                            100.0)
        assert len(original) == len(reified) == 1
        # The reified match unreifies onto the original data edges.
        back = unreify_edge_map(reified[0].edge_map, halves)
        assert back["credit"] == ("c1", "m1", 1.0)
        assert back["payment"] == ("b1", "m1", 2.0)

    def test_timing_violation_rejected_in_both(self):
        assert self._run(labelled_query(),
                         labelled_stream(BAD_ORDER_ROWS), 100.0) == []
        reified_q, _ = reify_query(labelled_query())
        assert self._run(reified_q,
                         reify_stream(labelled_stream(BAD_ORDER_ROWS)),
                         100.0) == []

    def test_equivalence_on_random_landmark_stream(self):
        """Landmark window (no expiry): match counts agree exactly."""
        import random
        rng = random.Random(8)
        rows = []
        t = 0.0
        labels = ["credit_pay", "real_payment", "transfer"]
        for _ in range(120):
            t += rng.random() * 0.4 + 0.01
            kind = rng.choice(labels)
            if kind == "real_payment":
                src, src_label = f"b{rng.randrange(2)}", "bank"
            else:
                src, src_label = f"a{rng.randrange(6)}", "account"
            dst = f"a{rng.randrange(6)}"
            while dst == src:
                dst = f"a{rng.randrange(6)}"
            rows.append((src, dst, t, kind, src_label, "account"))
        stream = labelled_stream(rows)
        window = stream.timespan * 10 + 1
        original = self._run(labelled_query(), stream, window)
        reified_q, _ = reify_query(labelled_query())
        reified = self._run(reified_q, reify_stream(stream), window)
        assert len(original) == len(reified)
